//! `qsort`, `strings`, `patricia` — sorting, searching and
//! pointer-chasing kernels (MiBench stand-ins).

const LCG_MUL: u32 = 1664525;
const LCG_INC: u32 = 1013904223;

#[inline]
fn lcg(x: u32) -> u32 {
    x.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC)
}

#[inline]
fn fold(cs: u32, v: u32) -> u32 {
    cs.wrapping_mul(31).wrapping_add(v)
}

// ---------------------------------------------------------------------
// qsort
// ---------------------------------------------------------------------

const QSORT_N: u32 = 2048;
const QSORT_SEED: u32 = 777;

/// Generates the `qsort` assembly: an iterative Lomuto quicksort over
/// `QSORT_N` LCG-filled words, checksumming the sorted array.
pub fn gen_qsort() -> String {
    let pad = crate::pad_asm("t0", "a0", 0x95027, 230);
    format!(
        r#"
; qsort: iterative quicksort of {QSORT_N} words
.text
main:
    ; --- fill arr with LCG values (0..65535) ---
    li   s0, {QSORT_SEED}
    la   s2, arr
    li   t0, 0
    li   t1, {QSORT_N}
    li   a2, {LCG_MUL}
    li   a3, {LCG_INC}
fill:
    mul  s0, s0, a2
    add  s0, s0, a3
    srli t2, s0, 16
    slli t3, t0, 2
    add  t3, s2, t3
    sw   t2, 0(t3)
    addi t0, t0, 1
    blt  t0, t1, fill
    ; --- push (0, N-1) on the work stack ---
    la   s3, stk             ; stack pointer (grows up, 8 bytes/frame)
    li   t0, 0
    li   t1, {QSORT_N}
    subi t1, t1, 1
    sw   t0, 0(s3)
    sw   t1, 4(s3)
    addi s3, s3, 8
loop:
    la   t2, stk
    beq  s3, t2, done        ; stack empty
    subi s3, s3, 8
    lw   t0, 0(s3)           ; lo
    lw   t1, 4(s3)           ; hi
    bge  t0, t1, loop
    ; --- Lomuto partition: pivot = arr[hi] ---
    slli a0, t1, 2
    add  a0, s2, a0
    lw   t4, 0(a0)           ; pivot
    subi t2, t0, 1           ; i = lo-1
    mv   t3, t0              ; j = lo
part:
    bge  t3, t1, part_done
    slli a0, t3, 2
    add  a0, s2, a0
    lw   a1, 0(a0)           ; arr[j]
    bgt  a1, t4, no_swap
    addi t2, t2, 1
    slli a2, t2, 2
    add  a2, s2, a2
    lw   a3, 0(a2)           ; arr[i]
    sw   a1, 0(a2)
    sw   a3, 0(a0)
no_swap:
    addi t3, t3, 1
    j    part
part_done:
    addi t2, t2, 1           ; p = i+1
    slli a0, t2, 2
    add  a0, s2, a0
    lw   a1, 0(a0)           ; arr[p]
    slli a2, t1, 2
    add  a2, s2, a2
    lw   a3, 0(a2)           ; arr[hi]
    sw   a3, 0(a0)
    sw   a1, 0(a2)
    ; --- push (lo, p-1) and (p+1, hi) ---
    subi a0, t2, 1
    sw   t0, 0(s3)
    sw   a0, 4(s3)
    addi s3, s3, 8
    addi a0, t2, 1
    sw   a0, 0(s3)
    sw   t1, 4(s3)
    addi s3, s3, 8
{pad}
    ; restore LCG constants clobbered by partition scratch
    li   a2, {LCG_MUL}
    li   a3, {LCG_INC}
    j    loop
done:
    ; --- checksum sorted array ---
    li   s1, 0
    li   t0, 0
    li   t1, {QSORT_N}
    li   a1, 31
cksum:
    slli t2, t0, 2
    add  t2, s2, t2
    lw   t3, 0(t2)
    mul  s1, s1, a1
    add  s1, s1, t3
    addi t0, t0, 1
    blt  t0, t1, cksum
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt
.data
result: .word 0
arr:    .space {arr_bytes}
stk:    .space {stk_bytes}
"#,
        arr_bytes = QSORT_N * 4,
        stk_bytes = QSORT_N * 8 + 16,
    )
}

/// Reference model for [`gen_qsort`]: the checksum of the sorted values
/// (independent of partition order).
pub fn ref_qsort() -> u32 {
    let mut x = QSORT_SEED;
    let mut vals: Vec<u32> = (0..QSORT_N)
        .map(|_| {
            x = lcg(x);
            x >> 16
        })
        .collect();
    vals.sort_unstable();
    vals.into_iter().fold(0u32, fold)
}

// ---------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------

const HAY_LEN: u32 = 4096;
const STR_SEED: u32 = 4242;
const NEEDLE_LEN: u32 = 6;
/// Needle start offsets inside the haystack (self-referential needles
/// guarantee at least one match each).
const NEEDLE_OFFS: [u32; 6] = [17, 512, 1033, 2048, 3071, 4000];

/// Generates the `strings` assembly: builds a 4 kB haystack over an
/// 8-letter alphabet and counts occurrences of six 6-byte needles taken
/// from the haystack itself (naive search).
pub fn gen_strings() -> String {
    let pad = crate::pad_asm("zero", "a1", 0x57815, 14);
    let offs: Vec<String> = NEEDLE_OFFS.iter().map(|o| o.to_string()).collect();
    format!(
        r#"
; strings: multi-needle naive substring search
.text
main:
    ; --- build haystack: 8-letter alphabet from LCG ---
    li   s0, {STR_SEED}
    la   s2, hay
    li   t0, 0
    li   t1, {HAY_LEN}
    li   a2, {LCG_MUL}
    li   a3, {LCG_INC}
build:
    mul  s0, s0, a2
    add  s0, s0, a3
    srli t2, s0, 16
    andi t2, t2, 7
    addi t2, t2, 97          ; 'a' + (x>>16)%8
    add  t3, s2, t0
    sb   t2, 0(t3)
    addi t0, t0, 1
    blt  t0, t1, build
    ; --- for each needle offset, count matches ---
    li   s1, 0               ; cs
    la   s3, offs
    li   s0, 0               ; needle index
needle_loop:
    li   t0, {nn}
    bge  s0, t0, done
    slli t0, s0, 2
    add  t0, s3, t0
    lw   t4, 0(t0)           ; off
    add  t4, s2, t4          ; needle ptr
    li   a0, 0               ; count
    li   t0, 0               ; pos
    li   t1, {scan_end}      ; HAY_LEN - NEEDLE_LEN inclusive bound
scan:
    bgt  t0, t1, scan_done
    add  t2, s2, t0          ; window ptr
    li   t3, 0               ; q
cmp:
    add  a1, t2, t3
    lbu  a1, 0(a1)
    add  a2, t4, t3
    lbu  a2, 0(a2)
    bne  a1, a2, cmp_fail
    addi t3, t3, 1
    li   a3, {NEEDLE_LEN}
    blt  t3, a3, cmp
    addi a0, a0, 1           ; full match
cmp_fail:
{pad}
    addi t0, t0, 1
    j    scan
scan_done:
    ; cs = fold(cs, count)
    li   a1, 31
    mul  s1, s1, a1
    add  s1, s1, a0
    addi s0, s0, 1
    j    needle_loop
done:
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt
.data
result: .word 0
offs:   .word {offs_list}
hay:    .space {HAY_LEN}
"#,
        nn = NEEDLE_OFFS.len(),
        scan_end = HAY_LEN - NEEDLE_LEN,
        offs_list = offs.join(", "),
    )
}

/// Reference model for [`gen_strings`].
pub fn ref_strings() -> u32 {
    let mut x = STR_SEED;
    let hay: Vec<u8> = (0..HAY_LEN)
        .map(|_| {
            x = lcg(x);
            (((x >> 16) & 7) + 97) as u8
        })
        .collect();
    let mut cs = 0u32;
    for &off in &NEEDLE_OFFS {
        let needle = &hay[off as usize..(off + NEEDLE_LEN) as usize];
        let mut count = 0u32;
        for pos in 0..=(HAY_LEN - NEEDLE_LEN) as usize {
            if &hay[pos..pos + NEEDLE_LEN as usize] == needle {
                count += 1;
            }
        }
        cs = fold(cs, count);
    }
    cs
}

// ---------------------------------------------------------------------
// patricia
// ---------------------------------------------------------------------

const TRIE_KEYS: u32 = 256;
const TRIE_LOOKUPS: u32 = 2048;
const TRIE_SEED: u32 = 31337;
/// Node layout: left(4) right(4) present(4) pad(4) = 16 bytes.
const NODE_SIZE: u32 = 16;

/// Generates the `patricia` assembly: inserts 256 random 16-bit keys
/// into a bitwise trie (16 levels, heap-allocated 16-byte nodes), then
/// performs 2048 lookups alternating between inserted keys and random
/// probes. Lookups chase child pointers — the irregular-access profile
/// of MiBench's patricia.
pub fn gen_patricia() -> String {
    let pad = crate::pad_asm("t4", "t3", 0x9a771, 230);
    format!(
        r#"
; patricia: bitwise trie build + pointer-chasing lookups
.text
main:
    li   s0, {TRIE_SEED}     ; LCG state
    la   s2, nodes           ; node pool; node 0 = root
    li   s3, 1               ; next free node index
    li   a2, {LCG_MUL}
    li   a3, {LCG_INC}
    ; --- insert TRIE_KEYS keys, also recording them in keys[] ---
    li   t4, 0               ; insert counter
insert_loop:
    li   t0, {TRIE_KEYS}
    bge  t4, t0, inserted
    mul  s0, s0, a2
    add  s0, s0, a3
    srli t0, s0, 16          ; key
    la   t1, keys
    slli t2, t4, 2
    add  t1, t1, t2
    sw   t0, 0(t1)
    ; walk/create 16 levels
    mv   t1, s2              ; p = root
    li   t2, 16              ; b = 16
ins_level:
    beqz t2, ins_done
    subi t2, t2, 1
    srl  t3, t0, t2
    andi t3, t3, 1           ; bit
    slli t3, t3, 2           ; child offset 0 or 4
    add  t3, t1, t3
    lw   a0, 0(t3)           ; child ptr
    bnez a0, ins_follow
    ; allocate node: nodes + next*16
    slli a0, s3, 4
    add  a0, s2, a0
    addi s3, s3, 1
    sw   a0, 0(t3)
ins_follow:
    mv   t1, a0
    j    ins_level
ins_done:
    li   a0, 1
    sw   a0, 8(t1)           ; present flag
    addi t4, t4, 1
    j    insert_loop
inserted:
    ; --- lookups: even j -> keys[j/2 mod KEYS], odd j -> random ---
    li   s1, 0               ; cs
    li   t4, 0               ; j
lookup_loop:
    li   t0, {TRIE_LOOKUPS}
    bge  t4, t0, done
    andi t0, t4, 1
    bnez t0, rand_key
    srli t0, t4, 1
    andi t0, t0, {keys_mask}
    la   t1, keys
    slli t0, t0, 2
    add  t1, t1, t0
    lw   t0, 0(t1)           ; key from keys[]
    j    have_key
rand_key:
    mul  s0, s0, a2
    add  s0, s0, a3
    srli t0, s0, 16
have_key:
    ; walk the trie counting steps
    mv   t1, s2              ; p = root
    li   t2, 16              ; b
    li   t3, 0               ; steps
walk:
    beqz t2, walk_end
    subi t2, t2, 1
    srl  a0, t0, t2
    andi a0, a0, 1
    slli a0, a0, 2
    add  a0, t1, a0
    lw   a0, 0(a0)
    beqz a0, walk_out        ; null child: absent
    mv   t1, a0
    addi t3, t3, 1
    j    walk
walk_end:
    lw   a0, 8(t1)           ; present?
    slli t3, t3, 1
    add  t3, t3, a0          ; steps*2 + present
    j    walk_fold
walk_out:
    slli t3, t3, 1           ; steps*2 + 0
walk_fold:
    li   a1, 31
    mul  s1, s1, a1
    add  s1, s1, t3
{pad}
    addi t4, t4, 1
    j    lookup_loop
done:
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt
.data
result: .word 0
keys:   .space {keys_bytes}
        .align 16
nodes:  .space {nodes_bytes}
"#,
        keys_mask = TRIE_KEYS - 1,
        keys_bytes = TRIE_KEYS * 4,
        nodes_bytes = (TRIE_KEYS * 17 + 8) * NODE_SIZE,
    )
}

/// Reference model for [`gen_patricia`].
pub fn ref_patricia() -> u32 {
    #[derive(Clone, Copy, Default)]
    struct Node {
        child: [u32; 2], // node indices; 0 = null (root is 0 but never a child)
        present: bool,
    }
    let mut nodes = vec![Node::default(); (TRIE_KEYS as usize) * 17 + 8];
    let mut next = 1u32;
    let mut x = TRIE_SEED;
    let mut keys = Vec::with_capacity(TRIE_KEYS as usize);

    for _ in 0..TRIE_KEYS {
        x = lcg(x);
        let key = x >> 16;
        keys.push(key);
        let mut p = 0usize;
        for b in (0..16).rev() {
            let bit = ((key >> b) & 1) as usize;
            if nodes[p].child[bit] == 0 {
                nodes[p].child[bit] = next;
                next += 1;
            }
            p = nodes[p].child[bit] as usize;
        }
        nodes[p].present = true;
    }

    let mut cs = 0u32;
    for j in 0..TRIE_LOOKUPS {
        let key = if j % 2 == 0 {
            keys[((j / 2) & (TRIE_KEYS - 1)) as usize]
        } else {
            x = lcg(x);
            x >> 16
        };
        let mut p = 0usize;
        let mut steps = 0u32;
        let mut fell_out = false;
        for b in (0..16).rev() {
            let bit = ((key >> b) & 1) as usize;
            let c = nodes[p].child[bit];
            if c == 0 {
                fell_out = true;
                break;
            }
            p = c as usize;
            steps += 1;
        }
        let v = if fell_out {
            steps * 2
        } else {
            steps * 2 + nodes[p].present as u32
        };
        cs = fold(cs, v);
    }
    cs
}

#[cfg(test)]
mod tests {
    use crate::{by_name, check_workload};

    #[test]
    fn qsort_matches_reference() {
        check_workload(by_name("qsort").unwrap());
    }

    #[test]
    fn strings_matches_reference() {
        check_workload(by_name("strings").unwrap());
    }

    #[test]
    fn patricia_matches_reference() {
        check_workload(by_name("patricia").unwrap());
    }

    #[test]
    fn strings_needles_all_match_at_least_once() {
        // Self-referential needles guarantee >= 1 occurrence each, so the
        // reference checksum cannot be the all-zero fold.
        assert_ne!(super::ref_strings(), 0);
    }
}
