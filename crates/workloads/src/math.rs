//! `basicm` — the MiBench *basicmath* stand-in.
//!
//! A compute-bound kernel: per iteration it draws an LCG value and runs
//! Newton integer square root (division heavy), a wrapping polynomial
//! with a Mersenne-ish modulus, and a Euclid GCD against the loop index.
//! Memory traffic is almost nil, which is exactly basicmath's profile —
//! it bounds how much a prefetcher (and hence IPEX) can matter.

const N: u32 = 1500;
const NEWTON_ITERS: u32 = 12;
const LCG_MUL: u32 = 1664525;
const LCG_INC: u32 = 1013904223;
const SEED: u32 = 12345;

/// Generates the `basicm` assembly source.
pub fn gen_basicm() -> String {
    let pad = crate::pad_asm("s2", "t0", 0xba51c, 230);
    format!(
        r#"
; basicm: Newton isqrt + polynomial + gcd per LCG sample
.text
main:
    li   s0, {SEED}          ; x (LCG state)
    li   s1, 0               ; cs
    li   s2, 1               ; i
    li   s3, {N}             ; N
    li   a2, {LCG_MUL}
    li   a3, {LCG_INC}
outer:
    mul  s0, s0, a2          ; x = x*K1 + K2
    add  s0, s0, a3
    srli t0, s0, 16          ; v = x >> 16
    ; --- integer sqrt (Newton, fixed {NEWTON_ITERS} iterations) ---
    li   t1, 0
    beqz t0, isqrt_done
    mv   t1, t0              ; g = v
    li   t3, {NEWTON_ITERS}
newton:
    div  t2, t0, t1          ; v / g
    add  t1, t1, t2
    srli t1, t1, 1           ; g = (g + v/g) / 2
    subi t3, t3, 1
    bnez t3, newton
isqrt_done:
    ; --- polynomial p = ((3v+7)v + 11) rem 65521 (wrapping) ---
    slli t2, t0, 1
    add  t2, t2, t0
    addi t2, t2, 7
    mul  t2, t2, t0
    addi t2, t2, 11
    li   a0, 65521
    rem  t2, t2, a0
    ; --- gcd(v, i) ---
    mv   t4, t0              ; a = v
    mv   a0, s2              ; b = i
gcd_loop:
    beqz a0, gcd_done
    rem  a1, t4, a0
    mv   t4, a0
    mv   a0, a1
    j    gcd_loop
gcd_done:
    ; cs = cs*31 + (p ^ g ^ gcd)
    xor  t2, t2, t1
    xor  t2, t2, t4
    li   a1, 31
    mul  s1, s1, a1
    add  s1, s1, t2
{pad}
    addi s2, s2, 1
    ble  s2, s3, outer
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt
.data
result: .word 0
"#
    )
}

/// Reference model for [`gen_basicm`].
pub fn ref_basicm() -> u32 {
    let mut x = SEED;
    let mut cs: u32 = 0;
    for i in 1..=N {
        x = x.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC);
        let v = x >> 16;
        // Newton isqrt, fixed iterations, matching the assembly exactly.
        let mut g: u32 = 0;
        if v != 0 {
            g = v;
            for _ in 0..NEWTON_ITERS {
                g = (g + v / g) >> 1;
            }
        }
        // Wrapping polynomial with signed remainder (the ISA's `rem`).
        let p = (v.wrapping_mul(3).wrapping_add(7))
            .wrapping_mul(v)
            .wrapping_add(11) as i32;
        let p = p.wrapping_rem(65521) as u32;
        // Euclid gcd(v, i).
        let (mut a, mut b) = (v, i);
        while b != 0 {
            let t = (a as i32).wrapping_rem(b as i32) as u32;
            a = b;
            b = t;
        }
        cs = cs.wrapping_mul(31).wrapping_add(p ^ g ^ a);
    }
    cs
}

#[cfg(test)]
mod tests {
    use crate::{by_name, check_workload};

    #[test]
    fn basicm_matches_reference() {
        check_workload(by_name("basicm").unwrap());
    }

    #[test]
    fn reference_is_stable() {
        // Pin the value so accidental semantic drift is caught even
        // without running the interpreter.
        assert_eq!(super::ref_basicm(), super::ref_basicm());
        assert_ne!(super::ref_basicm(), 0);
    }
}
