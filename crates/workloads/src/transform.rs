//! `fft`, `ifft`, `jpegd`, `unepic` — signal/image transform kernels
//! (MediaBench stand-ins).
//!
//! * **fft/ifft** — a real iterative radix-2 fixed-point FFT (Q14
//!   twiddles from an embedded sine table, per-stage scaling), 512
//!   points. Bit-reversal plus strided butterflies give the classic FFT
//!   access pattern.
//! * **jpegd** — dequantisation (standard JPEG luminance table) followed
//!   by a separable 8×8 integer Walsh–Hadamard reconstruction over a
//!   stream of coefficient blocks — the row/column-pass structure of an
//!   IDCT with exact integer arithmetic.
//! * **unepic** — multi-level inverse Haar wavelet reconstruction of a
//!   64×64 image (EPIC's decompression core): row and column passes at
//!   strides 4 and 256 bytes.

const LCG_MUL: u32 = 1664525;
const LCG_INC: u32 = 1013904223;

#[inline]
fn lcg(x: u32) -> u32 {
    x.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC)
}

#[inline]
fn fold(cs: u32, v: u32) -> u32 {
    cs.wrapping_mul(31).wrapping_add(v)
}

// ---------------------------------------------------------------------
// fft / ifft
// ---------------------------------------------------------------------

const FFT_N: u32 = 512;
const FFT_BITS: u32 = 9;
const FFT_SEED: u32 = 1991;
const IFFT_SEED: u32 = 1992;

/// Q14 sine table, one full period of length [`FFT_N`].
fn sintab() -> Vec<i32> {
    (0..FFT_N)
        .map(|k| {
            let th = 2.0 * std::f64::consts::PI * k as f64 / FFT_N as f64;
            (th.sin() * 16384.0).round() as i32
        })
        .collect()
}

fn gen_fft_common(inverse: bool) -> String {
    let pad = crate::pad_asm("t3", "t0", if inverse { 0x1ff7 } else { 0xff7 }, 220);
    let seed = if inverse { IFFT_SEED } else { FFT_SEED };
    let name = if inverse { "ifft" } else { "fft" };
    let table: Vec<String> = sintab().iter().map(|v| v.to_string()).collect();
    // Forward: wi = -sin; inverse: wi = +sin.
    let wi_sign = if inverse { "" } else { "    neg  a1, a1\n" };
    // The inverse transform also fills `im` with spectrum data.
    let im_fill = if inverse {
        r#"
    li   a2, {MUL}
    mul  s0, s0, a2
    li   a2, {INC}
    add  s0, s0, a2
    srli t2, s0, 16
    andi t2, t2, 2047
    subi t2, t2, 1024
"#
        .replace("{MUL}", &LCG_MUL.to_string())
        .replace("{INC}", &LCG_INC.to_string())
    } else {
        "    li   t2, 0\n".to_owned()
    };
    format!(
        r#"
; {name}: fixed-point radix-2 FFT, {FFT_N} points
.text
main:
    li   s0, {seed}
    la   s2, re
    la   s3, im
    ; --- fill input ---
    li   t4, 0
fill:
    li   a2, {LCG_MUL}
    mul  s0, s0, a2
    li   a2, {LCG_INC}
    add  s0, s0, a2
    srli t1, s0, 16
    andi t1, t1, 2047
    subi t1, t1, 1024        ; re sample in [-1024, 1023]
{im_fill}
    slli t0, t4, 2
    add  a0, s2, t0
    sw   t1, 0(a0)
    add  a0, s3, t0
    sw   t2, 0(a0)
    addi t4, t4, 1
    li   a2, {FFT_N}
    blt  t4, a2, fill
    ; --- bit-reverse permutation ---
    li   t4, 0
brp:
    ; r = bitrev9(i)
    mv   t0, t4
    li   t1, 0
    li   t2, {FFT_BITS}
brbit:
    slli t1, t1, 1
    andi a0, t0, 1
    or   t1, t1, a0
    srli t0, t0, 1
    subi t2, t2, 1
    bnez t2, brbit
    ble  t1, t4, brskip      ; swap only when r > i
    slli a0, t4, 2
    slli a1, t1, 2
    ; swap re
    add  a2, s2, a0
    add  a3, s2, a1
    lw   t0, 0(a2)
    lw   t2, 0(a3)
    sw   t2, 0(a2)
    sw   t0, 0(a3)
    ; swap im
    add  a2, s3, a0
    add  a3, s3, a1
    lw   t0, 0(a2)
    lw   t2, 0(a3)
    sw   t2, 0(a2)
    sw   t0, 0(a3)
brskip:
    addi t4, t4, 1
    li   a2, {FFT_N}
    blt  t4, a2, brp
    ; --- stages ---
    li   s1, 2               ; len
stage_loop:
    li   t0, {FFT_N}
    bgt  s1, t0, stages_done
    li   t4, 0               ; i
i_loop:
    li   t0, {FFT_N}
    bge  t4, t0, next_stage
    li   t3, 0               ; j
j_loop:
    srli t0, s1, 1           ; half
    bge  t3, t0, j_done
    ; k = j * (N / len)
    li   t0, {FFT_N}
    div  t0, t0, s1          ; step
    mul  t1, t3, t0          ; k
    la   a0, sintab
    slli t2, t1, 2
    add  t2, a0, t2
    lw   a1, 0(t2)           ; sin(k)
{wi_sign}    ; wr = sintab[(k + N/4) & (N-1)]
    addi t1, t1, {quarter}
    andi t1, t1, {nmask}
    slli t1, t1, 2
    add  t1, a0, t1
    lw   a0, 0(t1)           ; wr   (a1 = wi)
    ; b = (re/im)[i+j+half]
    add  t1, t4, t3
    srli t0, s1, 1
    add  t2, t1, t0
    slli t2, t2, 2           ; idxB bytes
    add  a2, s2, t2
    lw   a2, 0(a2)           ; re_b
    add  a3, s3, t2
    lw   a3, 0(a3)           ; im_b
    ; tr = (wr*re_b - wi*im_b) >> 14
    mul  t0, a0, a2
    mul  t1, a1, a3
    sub  t0, t0, t1
    srai t0, t0, 14          ; tr
    ; ti = (wr*im_b + wi*re_b) >> 14
    mul  t1, a0, a3
    mul  t2, a1, a2
    add  t1, t1, t2
    srai t1, t1, 14          ; ti
    ; recompute idxA (a2) / idxB (a3), in bytes
    add  a2, t4, t3
    srli a0, s1, 1
    add  a3, a2, a0
    slli a2, a2, 2
    slli a3, a3, 2
    ; re halves
    add  a0, s2, a2
    lw   a1, 0(a0)           ; ur
    add  t2, a1, t0
    srai t2, t2, 1
    sw   t2, 0(a0)
    sub  t2, a1, t0
    srai t2, t2, 1
    add  a0, s2, a3
    sw   t2, 0(a0)
    ; im halves
    add  a0, s3, a2
    lw   a1, 0(a0)           ; ui
    add  t2, a1, t1
    srai t2, t2, 1
    sw   t2, 0(a0)
    sub  t2, a1, t1
    srai t2, t2, 1
    add  a0, s3, a3
    sw   t2, 0(a0)
{pad}
    addi t3, t3, 1
    j    j_loop
j_done:
    add  t4, t4, s1          ; i += len
    j    i_loop
next_stage:
    slli s1, s1, 1
    j    stage_loop
stages_done:
    ; --- checksum: fold (re ^ im) & 0xffff over all points ---
    li   s1, 0
    li   t4, 0
cksum:
    slli t0, t4, 2
    add  a0, s2, t0
    lw   a1, 0(a0)
    add  a0, s3, t0
    lw   a2, 0(a0)
    xor  a1, a1, a2
    li   a2, 65535
    and  a1, a1, a2
    li   a2, 31
    mul  s1, s1, a2
    add  s1, s1, a1
    addi t4, t4, 1
    li   a2, {FFT_N}
    blt  t4, a2, cksum
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt
.data
result: .word 0
sintab: .word {table}
re:     .space {buf}
im:     .space {buf}
"#,
        quarter = FFT_N / 4,
        nmask = FFT_N - 1,
        table = table.join(", "),
        buf = FFT_N * 4,
    )
}

/// Generates the `fft` assembly.
pub fn gen_fft() -> String {
    gen_fft_common(false)
}

/// Generates the `ifft` assembly.
pub fn gen_ifft() -> String {
    gen_fft_common(true)
}

fn ref_fft_common(inverse: bool) -> u32 {
    let seed = if inverse { IFFT_SEED } else { FFT_SEED };
    let tab = sintab();
    let n = FFT_N as usize;
    let mut x = seed;
    let mut re = vec![0i32; n];
    let mut im = vec![0i32; n];
    for i in 0..n {
        x = lcg(x);
        re[i] = (((x >> 16) & 2047) as i32) - 1024;
        if inverse {
            x = lcg(x);
            im[i] = (((x >> 16) & 2047) as i32) - 1024;
        }
    }
    // Bit-reverse permutation.
    for i in 0..n {
        let mut v = i;
        let mut r = 0usize;
        for _ in 0..FFT_BITS {
            r = (r << 1) | (v & 1);
            v >>= 1;
        }
        if r > i {
            re.swap(i, r);
            im.swap(i, r);
        }
    }
    // Stages.
    let mut len = 2usize;
    while len <= n {
        let half = len / 2;
        let step = n / len;
        let mut i = 0;
        while i < n {
            for j in 0..half {
                let k = j * step;
                let wi = if inverse { tab[k] } else { -tab[k] };
                let wr = tab[(k + n / 4) & (n - 1)];
                let (rb, ib) = (re[i + j + half], im[i + j + half]);
                let tr = (wr.wrapping_mul(rb).wrapping_sub(wi.wrapping_mul(ib))) >> 14;
                let ti = (wr.wrapping_mul(ib).wrapping_add(wi.wrapping_mul(rb))) >> 14;
                let (ur, ui) = (re[i + j], im[i + j]);
                re[i + j] = (ur + tr) >> 1;
                im[i + j] = (ui + ti) >> 1;
                re[i + j + half] = (ur - tr) >> 1;
                im[i + j + half] = (ui - ti) >> 1;
            }
            i += len;
        }
        len <<= 1;
    }
    let mut cs = 0u32;
    for i in 0..n {
        cs = fold(cs, ((re[i] ^ im[i]) & 0xffff) as u32);
    }
    cs
}

/// Reference model for [`gen_fft`].
pub fn ref_fft() -> u32 {
    ref_fft_common(false)
}

/// Reference model for [`gen_ifft`].
pub fn ref_ifft() -> u32 {
    ref_fft_common(true)
}

// ---------------------------------------------------------------------
// jpegd
// ---------------------------------------------------------------------

const JPEG_BLOCKS: u32 = 20;
const JPEG_SEED: u32 = 7321;

/// The standard JPEG luminance quantisation table (zig-zag free,
/// row-major).
const QTAB: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Generates the `jpegd` assembly: for each coefficient block, dequantise
/// with the JPEG luminance table, then run the separable 8×8 integer
/// Walsh–Hadamard reconstruction (row pass stride 4, column pass stride
/// 32) and fold the clamped output.
pub fn gen_jpegd() -> String {
    let pad = crate::pad_asm("t4", "t1", 0x79e5, 230);
    let qtab: Vec<String> = QTAB.iter().map(|v| v.to_string()).collect();
    format!(
        r#"
; jpegd: dequant + 8x8 separable WHT reconstruction, {JPEG_BLOCKS} blocks
.text
main:
    li   s0, {JPEG_SEED}
    li   s1, 0               ; cs
    li   s2, 0               ; block counter
block_loop:
    li   t0, {JPEG_BLOCKS}
    bge  s2, t0, done
    ; --- fill + dequantise 64 coefficients ---
    la   s3, blk
    li   t4, 0
fillq:
    li   a2, {LCG_MUL}
    mul  s0, s0, a2
    li   a2, {LCG_INC}
    add  s0, s0, a2
    srli t1, s0, 16
    andi t1, t1, 1023
    subi t1, t1, 512         ; coeff
    la   a0, qtab
    slli a1, t4, 2
    add  a0, a0, a1
    lw   a0, 0(a0)
    mul  t1, t1, a0          ; dequantised
    slli a1, t4, 2
    add  a1, s3, a1
    sw   t1, 0(a1)
{pad}
    addi t4, t4, 1
    li   a2, 64
    blt  t4, a2, fillq
    ; --- row passes: wht8(blk + r*32, stride 4) ---
    li   t4, 0
rows:
    slli a0, t4, 5
    add  a0, s3, a0
    li   a1, 4
    call wht8
    addi t4, t4, 1
    li   a2, 8
    blt  t4, a2, rows
    ; --- column passes: wht8(blk + c*4, stride 32) ---
    li   t4, 0
cols:
    slli a0, t4, 2
    add  a0, s3, a0
    li   a1, 32
    call wht8
    addi t4, t4, 1
    li   a2, 8
    blt  t4, a2, cols
    ; --- fold clamped pixels: p = clamp(v>>6 + 128, 0, 255) ---
    li   t4, 0
foldpx:
    slli a0, t4, 2
    add  a0, s3, a0
    lw   a1, 0(a0)
    srai a1, a1, 6
    addi a1, a1, 128
    bgez a1, fp1
    li   a1, 0
fp1:
    li   a2, 255
    ble  a1, a2, fp2
    mv   a1, a2
fp2:
    li   a2, 31
    mul  s1, s1, a2
    add  s1, s1, a1
    addi t4, t4, 1
    li   a2, 64
    blt  t4, a2, foldpx
    addi s2, s2, 1
    j    block_loop
done:
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt

; --- wht8(a0 = base addr, a1 = stride bytes): in-place 8-point WHT.
;     t4 is treated as callee-saved (the block loops keep counters there).
wht8:
    subi sp, sp, 4
    sw   t4, 0(sp)
    li   t0, 4               ; h
wht_stage:
    beqz t0, wht_done
    li   t1, 0               ; g (group start)
wht_group:
    li   a2, 8
    bge  t1, a2, wht_next
    li   t2, 0               ; k
wht_pair:
    bge  t2, t0, wht_gnext
    ; i = g+k, j = g+k+h
    add  a2, t1, t2
    mul  a2, a2, a1
    add  a2, a0, a2          ; &v[i]
    add  a3, t1, t2
    add  a3, a3, t0
    mul  a3, a3, a1
    add  a3, a0, a3          ; &v[j]
    lw   t3, 0(a2)           ; a
    lw   t4, 0(a3)           ; b
    add  t4, t3, t4
    sw   t4, 0(a2)
    lw   t4, 0(a3)
    sub  t3, t3, t4
    sw   t3, 0(a3)
    addi t2, t2, 1
    j    wht_pair
wht_gnext:
    slli a2, t0, 1
    add  t1, t1, a2          ; g += 2h
    j    wht_group
wht_next:
    srli t0, t0, 1
    j    wht_stage
wht_done:
    lw   t4, 0(sp)
    addi sp, sp, 4
    ret
.data
result: .word 0
qtab:   .word {qtab}
blk:    .space 256
"#,
        qtab = qtab.join(", "),
    )
}

/// Reference model for [`gen_jpegd`].
pub fn ref_jpegd() -> u32 {
    fn wht8(v: &mut [i32; 64], base: usize, stride: usize) {
        let mut h = 4usize;
        while h > 0 {
            let mut g = 0usize;
            while g < 8 {
                for k in 0..h {
                    let i = base + (g + k) * stride;
                    let j = base + (g + k + h) * stride;
                    let (a, b) = (v[i], v[j]);
                    v[i] = a.wrapping_add(b);
                    v[j] = a.wrapping_sub(b);
                }
                g += 2 * h;
            }
            h >>= 1;
        }
    }
    let mut x = JPEG_SEED;
    let mut cs = 0u32;
    for _ in 0..JPEG_BLOCKS {
        let mut blk = [0i32; 64];
        for (i, b) in blk.iter_mut().enumerate() {
            x = lcg(x);
            let c = (((x >> 16) & 1023) as i32) - 512;
            *b = c.wrapping_mul(QTAB[i]);
        }
        for r in 0..8 {
            wht8(&mut blk, r * 8, 1);
        }
        for c in 0..8 {
            wht8(&mut blk, c, 8);
        }
        for v in blk {
            let p = ((v >> 6) + 128).clamp(0, 255);
            cs = fold(cs, p as u32);
        }
    }
    cs
}

// ---------------------------------------------------------------------
// unepic
// ---------------------------------------------------------------------

const EPIC_DIM: u32 = 64;
const EPIC_SEED: u32 = 515;

/// Generates the `unepic` assembly: fills a 64×64 coefficient image and
/// reconstructs it through three inverse-Haar levels (16→32→64), rows
/// then columns per level.
pub fn gen_unepic() -> String {
    let pad = crate::pad_asm("s3", "t0", 0x0e71c, 150);
    let pad2 = crate::pad_asm("s3", "t0", 0x1e71c, 150);
    format!(
        r#"
; unepic: 3-level inverse Haar reconstruction of a {EPIC_DIM}x{EPIC_DIM} image
.text
main:
    li   s0, {EPIC_SEED}
    la   s2, img
    ; --- fill coefficients in [-1024, 1023] ---
    li   t4, 0
fill:
    li   a2, {LCG_MUL}
    mul  s0, s0, a2
    li   a2, {LCG_INC}
    add  s0, s0, a2
    srli t1, s0, 16
    andi t1, t1, 2047
    subi t1, t1, 1024
    slli t0, t4, 2
    add  a0, s2, t0
    sw   t1, 0(a0)
    addi t4, t4, 1
    li   a2, {npix}
    blt  t4, a2, fill
    ; --- levels: size = 16, 32, 64 ---
    li   s1, 16
level:
    li   t0, {EPIC_DIM}
    bgt  s1, t0, levels_done
    ; row passes: ipass(img + r*256, half=size/2, stride=4) for r < size
    li   s3, 0
rowp:
    bge  s3, s1, colp_init
    slli a0, s3, 8           ; r * 64 * 4
    add  a0, s2, a0
    srli a1, s1, 1
    li   a2, 4
    call ipass
{pad}
    addi s3, s3, 1
    j    rowp
colp_init:
    li   s3, 0
colp:
    bge  s3, s1, level_next
    slli a0, s3, 2           ; c * 4
    add  a0, s2, a0
    srli a1, s1, 1
    li   a2, 256             ; 64 words per row
    call ipass
{pad2}
    addi s3, s3, 1
    j    colp
level_next:
    slli s1, s1, 1
    j    level
levels_done:
    ; --- checksum all pixels ---
    li   s1, 0
    li   t4, 0
cksum:
    slli t0, t4, 2
    add  a0, s2, t0
    lw   a1, 0(a0)
    li   a2, 65535
    and  a1, a1, a2
    li   a2, 31
    mul  s1, s1, a2
    add  s1, s1, a1
    addi t4, t4, 1
    li   a2, {npix}
    blt  t4, a2, cksum
    la   a1, result
    sw   s1, 0(a1)
    mv   a0, s1
    halt

; --- ipass(a0 = base, a1 = half, a2 = stride bytes): inverse Haar pairs
;     via the tmp buffer ---
ipass:
    ; tmp[2k] = v[k] + v[k+half]; tmp[2k+1] = v[k] - v[k+half]
    li   t0, 0               ; k
ip1:
    bge  t0, a1, ip2_init
    mul  t1, t0, a2
    add  t1, a0, t1
    lw   t2, 0(t1)           ; a = v[k]
    add  t1, t0, a1
    mul  t1, t1, a2
    add  t1, a0, t1
    lw   t3, 0(t1)           ; d = v[k+half]
    la   a3, tmp
    slli t1, t0, 3           ; 2k words -> 8k bytes
    add  a3, a3, t1
    add  t1, t2, t3
    sw   t1, 0(a3)
    sub  t1, t2, t3
    sw   t1, 4(a3)
    addi t0, t0, 1
    j    ip1
ip2_init:
    ; copy back: v[k*stride] = tmp[k] for k < 2*half
    li   t0, 0
    slli t3, a1, 1           ; 2*half
ip2:
    bge  t0, t3, ip_done
    la   a3, tmp
    slli t1, t0, 2
    add  a3, a3, t1
    lw   t2, 0(a3)
    mul  t1, t0, a2
    add  t1, a0, t1
    sw   t2, 0(t1)
    addi t0, t0, 1
    j    ip2
ip_done:
    ret
.data
result: .word 0
tmp:    .space 256
img:    .space {img_bytes}
"#,
        npix = EPIC_DIM * EPIC_DIM,
        img_bytes = EPIC_DIM * EPIC_DIM * 4,
    )
}

/// Reference model for [`gen_unepic`].
pub fn ref_unepic() -> u32 {
    let dim = EPIC_DIM as usize;
    let mut x = EPIC_SEED;
    let mut img = vec![0i32; dim * dim];
    for p in img.iter_mut() {
        x = lcg(x);
        *p = (((x >> 16) & 2047) as i32) - 1024;
    }
    fn ipass(img: &mut [i32], base: usize, half: usize, stride: usize) {
        let mut tmp = [0i32; 64];
        for k in 0..half {
            let a = img[base + k * stride];
            let d = img[base + (k + half) * stride];
            tmp[2 * k] = a.wrapping_add(d);
            tmp[2 * k + 1] = a.wrapping_sub(d);
        }
        for (k, item) in tmp.iter().enumerate().take(2 * half) {
            img[base + k * stride] = *item;
        }
    }
    let mut size = 16usize;
    while size <= dim {
        for r in 0..size {
            ipass(&mut img, r * dim, size / 2, 1);
        }
        for c in 0..size {
            ipass(&mut img, c, size / 2, dim);
        }
        size <<= 1;
    }
    let mut cs = 0u32;
    for v in img {
        cs = fold(cs, (v & 0xffff) as u32);
    }
    cs
}

#[cfg(test)]
mod tests {
    use crate::{by_name, check_workload};

    #[test]
    fn fft_matches_reference() {
        check_workload(by_name("fft").unwrap());
    }

    #[test]
    fn ifft_matches_reference() {
        check_workload(by_name("ifft").unwrap());
    }

    #[test]
    fn jpegd_matches_reference() {
        check_workload(by_name("jpegd").unwrap());
    }

    #[test]
    fn unepic_matches_reference() {
        check_workload(by_name("unepic").unwrap());
    }

    #[test]
    fn fft_and_ifft_differ() {
        assert_ne!(super::ref_fft(), super::ref_ifft());
    }
}
