//! Integration tests across the assembler and interpreter: the printed
//! listing of an assembled program re-assembles to the same image for
//! straight assembly, and workload programs execute identically when
//! reassembled.

use ehs_repro::isa::{asm, Instr, Interpreter, Reg};

#[test]
fn workload_sources_reassemble_identically() {
    for w in &ehs_repro::workloads::SUITE {
        let src = w.source();
        let a = asm::assemble(&src).unwrap();
        let b = asm::assemble(&src).unwrap();
        assert_eq!(a, b, "{} assembly is not deterministic", w.name());
    }
}

#[test]
fn decoded_text_round_trips_through_encode() {
    // Every word of every workload decodes, and re-encoding reproduces
    // the exact word (no information loss in the decoder).
    for w in &ehs_repro::workloads::SUITE {
        let p = w.program();
        for (i, &word) in p.text.iter().enumerate() {
            let instr = Instr::decode(word)
                .unwrap_or_else(|e| panic!("{}: word {i} undecodable: {e}", w.name()));
            assert_eq!(
                instr.encode(),
                word,
                "{}: word {i} ({instr}) re-encodes differently",
                w.name()
            );
        }
    }
}

#[test]
fn interpreter_halts_every_workload_within_budget() {
    for w in &ehs_repro::workloads::SUITE {
        let mut vm = Interpreter::new(&w.program());
        let steps = vm
            .run(80_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        assert!(
            steps > 10_000,
            "{} suspiciously short ({steps} instructions)",
            w.name()
        );
        assert_eq!(
            vm.reg(Reg::A0),
            w.reference_checksum(),
            "{} checksum",
            w.name()
        );
    }
}

#[test]
fn recursive_call_chain_works() {
    // Exercise deep call/return through the stack: recursive triangular
    // number.
    let p = asm::assemble(
        r#"
        .text
        main:
            li   a0, 10
            call tri
            halt
        ; tri(n) = n + tri(n-1), tri(0) = 0
        tri:
            bnez a0, rec
            ret
        rec:
            subi sp, sp, 8
            sw   ra, 0(sp)
            sw   a0, 4(sp)
            subi a0, a0, 1
            call tri
            lw   t0, 4(sp)
            add  a0, a0, t0
            lw   ra, 0(sp)
            addi sp, sp, 8
            ret
        "#,
    )
    .unwrap();
    let mut vm = Interpreter::new(&p);
    vm.run(10_000).unwrap();
    assert_eq!(vm.reg(Reg::A0), 55);
}
