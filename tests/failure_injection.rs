//! Failure injection: outage storms, degenerate traces and pathological
//! configurations must degrade gracefully, never corrupt results.

use ehs_repro::energy::{CapacitorConfig, PowerTrace};
use ehs_repro::isa::Reg;
use ehs_repro::sim::{Machine, SimConfig, SimError};

#[test]
fn outage_storm_still_produces_correct_checksum() {
    // A sawtooth supply: strong enough to recharge quickly, too weak to
    // sustain execution for long -> dozens of outages.
    let samples: Vec<f64> = (0..1000)
        .map(|i| if i % 5 == 0 { 10.0 } else { 0.2 })
        .collect();
    let trace = PowerTrace::from_samples_mw(samples);
    let w = ehs_repro::workloads::by_name("gsmd").unwrap();
    let mut m = Machine::with_trace(SimConfig::ipex_both(), &w.program(), trace);
    let r = m.run().expect("survives the storm");
    assert!(
        r.stats.power_cycles > 50,
        "expected an outage storm, got {}",
        r.stats.power_cycles
    );
    assert_eq!(m.reg(Reg::A0), w.reference_checksum());
}

#[test]
fn dead_supply_reports_cycle_limit_not_hang() {
    let trace = PowerTrace::constant_mw(0.0001, 4);
    let mut cfg = SimConfig::baseline();
    cfg.max_cycles = 2_000_000;
    let w = ehs_repro::workloads::by_name("gsmd").unwrap();
    let err = Machine::with_trace(cfg, &w.program(), trace)
        .run()
        .unwrap_err();
    assert!(matches!(err, SimError::CycleLimit { .. }));
}

#[test]
fn tiny_capacitor_still_makes_progress() {
    // A very small capacitor: each power cycle fits only a handful of
    // instructions, but forward progress must continue.
    let mut cfg = SimConfig::ipex_both();
    cfg.capacitor = CapacitorConfig {
        capacitance_uf: 0.05,
        ..CapacitorConfig::paper_default()
    };
    cfg.max_cycles = 20_000_000_000;
    let trace = PowerTrace::constant_mw(3.0, 16);
    let w = ehs_repro::workloads::by_name("gsmd").unwrap();
    let mut m = Machine::with_trace(cfg, &w.program(), trace);
    let r = m.run().expect("completes eventually");
    assert!(r.stats.power_cycles > 100);
    assert_eq!(m.reg(Reg::A0), w.reference_checksum());
}

#[test]
fn giant_capacitor_runs_in_one_power_cycle() {
    let mut cfg = SimConfig::baseline();
    cfg.capacitor = CapacitorConfig::with_capacitance_uf(1000.0);
    let w = ehs_repro::workloads::by_name("gsmd").unwrap();
    let r = Machine::with_trace(cfg, &w.program(), SimConfig::default_trace())
        .run()
        .expect("completes");
    assert_eq!(
        r.stats.power_cycles, 1,
        "1000 uF should never see an outage"
    );
    assert_eq!(r.energy.backup_restore_nj, 0.0);
}
