//! Failure injection: outage storms, degenerate traces and pathological
//! configurations must degrade gracefully, never corrupt results.
//!
//! The storm and tiny-capacitor scenarios sweep five workloads of very
//! different memory behaviour (sorting, FFT, crypto, tries, JPEG) and
//! hold the full `ehs-verify` differential bar — every register and the
//! whole memory image — not just the `a0` checksum.

use ehs_repro::energy::{CapacitorConfig, PowerTrace};
use ehs_repro::isa::Reg;
use ehs_repro::sim::{Ipex, Machine, SimConfig, SimError};
use ehs_repro::verify::oracle::{golden_state, ArchState, Divergence};
use ehs_repro::verify::run_parallel;

/// The five stress workloads (distinct access patterns, modest debug
/// runtimes).
const STRESS_WORKLOADS: [&str; 5] = ["qsort", "fft", "rijndaele", "patricia", "jpegd"];

/// Runs `w` on the machine under `cfg`/`trace` and demands full
/// architectural equality with the golden interpreter; returns the
/// observed number of power cycles.
fn check_full_state(w: &ehs_repro::workloads::Workload, cfg: SimConfig, trace: PowerTrace) -> u64 {
    let program = w.program();
    let golden = golden_state(&program, cfg.nvm.size_bytes as usize)
        .unwrap_or_else(|e| panic!("{}: golden run faulted: {e}", w.name()));
    let mut m = Machine::with_trace(cfg, &program, trace);
    let r = m
        .run()
        .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()));
    if let Some(d) = Divergence::between(&golden, &ArchState::of_machine(&m)) {
        panic!(
            "{}: state corrupted across {} power cycles: {d}",
            w.name(),
            r.stats.power_cycles
        );
    }
    r.stats.power_cycles
}

#[test]
fn outage_storm_still_produces_correct_checksum() {
    // A sawtooth supply: strong enough to recharge quickly, too weak to
    // sustain execution for long -> dozens of outages.
    let samples: Vec<f64> = (0..1000)
        .map(|i| if i % 5 == 0 { 10.0 } else { 0.2 })
        .collect();
    let trace = PowerTrace::from_samples_mw(samples);
    let w = ehs_repro::workloads::by_name("gsmd").unwrap();
    let mut m = Machine::with_trace(
        SimConfig::builder().ipex(Ipex::Both).build(),
        &w.program(),
        trace,
    );
    let r = m.run().expect("survives the storm");
    assert!(
        r.stats.power_cycles > 50,
        "expected an outage storm, got {}",
        r.stats.power_cycles
    );
    assert_eq!(m.reg(Reg::A0), w.reference_checksum());
}

#[test]
fn outage_storm_preserves_full_state_across_workloads() {
    // Same sawtooth supply as above, across five workloads in parallel.
    let samples: Vec<f64> = (0..1000)
        .map(|i| if i % 5 == 0 { 10.0 } else { 0.2 })
        .collect();
    let trace = PowerTrace::from_samples_mw(samples);
    let cycles = run_parallel(&STRESS_WORKLOADS, |name| {
        let w = ehs_repro::workloads::by_name(name).unwrap();
        (
            *name,
            check_full_state(
                w,
                SimConfig::builder().ipex(Ipex::Both).build(),
                trace.clone(),
            ),
        )
    });
    for (name, power_cycles) in cycles {
        // The shortest of the five (rijndaele) sees ~40 outages; the
        // point is dozens of cycles, not a specific count.
        assert!(
            power_cycles > 30,
            "{name}: expected an outage storm, got {power_cycles} power cycles"
        );
    }
}

#[test]
fn tiny_capacitor_preserves_full_state_across_workloads() {
    // A very small capacitor: each power cycle fits only a handful of
    // instructions, but forward progress and state integrity must hold
    // for every access pattern.
    let mut cfg = SimConfig::builder().ipex(Ipex::Both).build();
    cfg.capacitor = CapacitorConfig {
        capacitance_uf: 0.05,
        ..CapacitorConfig::paper_default()
    };
    cfg.max_cycles = 20_000_000_000;
    let trace = PowerTrace::constant_mw(3.0, 16);
    let cycles = run_parallel(&STRESS_WORKLOADS, |name| {
        let w = ehs_repro::workloads::by_name(name).unwrap();
        (*name, check_full_state(w, cfg.clone(), trace.clone()))
    });
    for (name, power_cycles) in cycles {
        assert!(
            power_cycles > 100,
            "{name}: expected a storm of tiny power cycles, got {power_cycles}"
        );
    }
}

#[test]
fn dead_supply_reports_cycle_limit_not_hang() {
    let trace = PowerTrace::constant_mw(0.0001, 4);
    let cfg = SimConfig::builder().max_cycles(2_000_000).build();
    let w = ehs_repro::workloads::by_name("gsmd").unwrap();
    let err = Machine::with_trace(cfg, &w.program(), trace)
        .run()
        .unwrap_err();
    assert!(matches!(err, SimError::CycleLimit { .. }));
}

#[test]
fn tiny_capacitor_still_makes_progress() {
    // A very small capacitor: each power cycle fits only a handful of
    // instructions, but forward progress must continue.
    let mut cfg = SimConfig::builder().ipex(Ipex::Both).build();
    cfg.capacitor = CapacitorConfig {
        capacitance_uf: 0.05,
        ..CapacitorConfig::paper_default()
    };
    cfg.max_cycles = 20_000_000_000;
    let trace = PowerTrace::constant_mw(3.0, 16);
    let w = ehs_repro::workloads::by_name("gsmd").unwrap();
    let mut m = Machine::with_trace(cfg, &w.program(), trace);
    let r = m.run().expect("completes eventually");
    assert!(r.stats.power_cycles > 100);
    assert_eq!(m.reg(Reg::A0), w.reference_checksum());
}

#[test]
fn giant_capacitor_runs_in_one_power_cycle() {
    let cfg = SimConfig::builder().capacitor_uf(1000.0).build();
    let w = ehs_repro::workloads::by_name("gsmd").unwrap();
    let r = Machine::with_trace(cfg, &w.program(), SimConfig::default_trace())
        .run()
        .expect("completes");
    assert_eq!(
        r.stats.power_cycles, 1,
        "1000 uF should never see an outage"
    );
    assert_eq!(r.energy.backup_restore_nj, 0.0);
}
