//! End-to-end behaviour of the IPEX controller inside the full system.

use ehs_repro::energy::TraceKind;
use ehs_repro::sim::{Ipex, Machine, SimConfig, SimResult};

fn run(cfg: SimConfig, name: &str) -> SimResult {
    let w = ehs_repro::workloads::by_name(name).unwrap();
    Machine::with_trace(cfg, &w.program(), TraceKind::RfHome.synthesize(42, 400_000))
        .run()
        .expect("completes")
}

#[test]
fn ipex_reduces_prefetch_operations() {
    let base = run(SimConfig::default(), "adpcmd");
    let ipex = run(SimConfig::builder().ipex(Ipex::Both).build(), "adpcmd");
    assert!(
        ipex.prefetch_operations() < base.prefetch_operations(),
        "IPEX must issue fewer prefetches ({} vs {})",
        ipex.prefetch_operations(),
        base.prefetch_operations()
    );
    let s = ipex.ipex_i.expect("IPEX stats present");
    assert!(s.throttled > 0, "some candidates must be throttled");
    assert!(s.power_cycles > 1);
}

#[test]
fn ipex_saves_energy_on_prefetch_heavy_workloads() {
    // adpcmd is one of the biggest IPEX winners in our calibration; a
    // regression here means the mechanism broke.
    let base = run(SimConfig::default(), "adpcmd");
    let ipex = run(SimConfig::builder().ipex(Ipex::Both).build(), "adpcmd");
    assert!(
        ipex.total_energy_nj() < base.total_energy_nj(),
        "IPEX energy {} >= baseline {}",
        ipex.total_energy_nj(),
        base.total_energy_nj()
    );
    assert!(
        ipex.stats.total_cycles < base.stats.total_cycles,
        "IPEX must be faster on adpcmd"
    );
}

#[test]
fn ipex_adapts_thresholds_across_power_cycles() {
    let ipex = run(SimConfig::builder().ipex(Ipex::Both).build(), "gsmd");
    let s = ipex.ipex_i.expect("stats");
    assert!(
        s.threshold_lowers + s.threshold_raises > 0,
        "adaptation must trigger across {} power cycles",
        s.power_cycles
    );
}

#[test]
fn ipex_never_corrupts_mode_accounting() {
    let ipex = run(SimConfig::builder().ipex(Ipex::Both).build(), "gsme");
    let s = ipex.ipex_d.expect("stats");
    let rate = s.overall_throttle_rate();
    assert!((0.0..=1.0).contains(&rate));
    assert_eq!(s.reissued, 0, "reissue extension is off by default");
}

#[test]
fn ideal_backup_never_slower() {
    let real = run(SimConfig::builder().ipex(Ipex::Both).build(), "basicm");
    let ideal = run(
        SimConfig::builder()
            .ipex(Ipex::Both)
            .build()
            .with_ideal_backup(),
        "basicm",
    );
    assert!(ideal.stats.total_cycles <= real.stats.total_cycles);
    assert_eq!(ideal.energy.backup_restore_nj, 0.0);
}
