//! Snapshot/resume determinism across the full 20-workload suite.
//!
//! For every suite workload under a brownout-style supply (healthy base
//! with periodic single-sample dips — the adversarial fuzzer's first
//! strategy), running to a split point, serializing the complete
//! machine state through JSON, resuming a fresh machine from it, and
//! running on must land in the bit-identical full state as the
//! uninterrupted run: the comparison is the snapshot digest over
//! registers, memory delta, cache and prefetch-buffer contents,
//! prefetcher/throttle state, capacitor energy, statistics, energy
//! breakdown and event counts. The horizon is bounded so the suite
//! stays tier-1 fast; completion is not required for equivalence.

use proptest::prelude::*;

use ehs_repro::energy::PowerTrace;
use ehs_repro::prefetch::{DataPrefetcherKind, InstPrefetcherKind};
use ehs_repro::sim::slice::{plan_at, run_sliced_serial};
use ehs_repro::sim::{Ipex, Machine, SimConfig, Snapshot};
use ehs_repro::verify::run_parallel;
use ehs_repro::workloads::SUITE;

/// Deterministic brownout-style supply: a healthy base with a
/// single-sample dip every 7th sample and a strong recovery tail.
fn brownout_trace() -> PowerTrace {
    let mut samples: Vec<f64> = (0..96)
        .map(|i| {
            if i % 7 == 3 {
                0.5
            } else {
                24.0 + (i % 5) as f64
            }
        })
        .collect();
    samples.extend(std::iter::repeat_n(35.0, 16));
    PowerTrace::from_samples_mw(samples)
}

const SPLIT_CYCLE: u64 = 600_000;
const HORIZON: u64 = 1_500_000;

#[test]
fn snapshot_resume_is_bit_identical_for_all_20_workloads() {
    let trace = brownout_trace();
    let failures: Vec<String> = run_parallel(&SUITE, |w| {
        let program = w.program();
        // Alternate configurations so both controller shapes are swept.
        let cfg = if w.name().len() % 2 == 0 {
            SimConfig::builder().ipex(Ipex::Both).build()
        } else {
            SimConfig::builder().build()
        };

        let mut whole = Machine::with_trace(cfg.clone(), &program, trace.clone());
        whole.run_until(HORIZON).expect("whole run");

        let mut first = Machine::with_trace(cfg, &program, trace.clone());
        first.run_until(SPLIT_CYCLE).expect("first leg");
        let snap = match Snapshot::from_json(&first.snapshot(&program).to_json()) {
            Ok(s) => s,
            Err(e) => return Some(format!("{}: snapshot does not round-trip: {e}", w.name())),
        };
        let mut resumed = match Machine::resume(&snap, &program, trace.clone()) {
            Ok(m) => m,
            Err(e) => return Some(format!("{}: snapshot does not resume: {e}", w.name())),
        };
        if resumed.state_digest(&program) != snap.digest() {
            return Some(format!("{}: resumed state != snapshot", w.name()));
        }
        resumed.run_until(HORIZON).expect("resumed leg");
        if resumed.state_digest(&program) != whole.state_digest(&program) {
            return Some(format!(
                "{}: split run diverged from the uninterrupted run",
                w.name()
            ));
        }
        None
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "snapshot/resume broke determinism:\n  {}",
        failures.join("\n  ")
    );
}

/// Builds the configuration for one (ikind, dkind, policy) cell of the
/// prefetcher × throttling-policy grid, with a small memory image so
/// per-case snapshot capture stays cheap.
fn grid_cfg(ikind: InstPrefetcherKind, dkind: DataPrefetcherKind, policy: u8) -> SimConfig {
    use ehs_repro::ipex::{HysteresisConfig, PolicyConfig, PredictiveConfig, StaticDegreeConfig};
    let mut cfg = match policy {
        0 => SimConfig::builder().build(),
        1 => SimConfig::builder().ipex(Ipex::Both).build(),
        2 => SimConfig::builder()
            .throttle_policy(
                Ipex::Both,
                PolicyConfig::Predictive(PredictiveConfig::paper_default()),
            )
            .build(),
        3 => SimConfig::builder()
            .throttle_policy(
                Ipex::Both,
                PolicyConfig::Hysteresis(HysteresisConfig::paper_default()),
            )
            .build(),
        _ => SimConfig::builder()
            .throttle_policy(
                Ipex::Both,
                PolicyConfig::StaticDegree(StaticDegreeConfig::conservative()),
            )
            .build(),
    };
    cfg.inst_prefetcher = ikind;
    cfg.data_prefetcher = dkind;
    cfg.nvm.size_bytes = 1 << 21;
    cfg
}

proptest! {
    /// Random K-way slicing at arbitrary `run_until` boundaries
    /// stitches bit-identically to the monolithic run, across every
    /// prefetcher kind (4 instruction × 5 data) and all 5 throttling
    /// policies, under random supplies. This is the end-to-end slicing
    /// guarantee `ehs_sim::slice` rests on: entry snapshots + replayed
    /// targets reproduce the exact result and final state digest.
    #[test]
    fn random_k_way_slicing_stitches_bit_identically(
        ikind in prop_oneof![
            Just(InstPrefetcherKind::None),
            Just(InstPrefetcherKind::Sequential),
            Just(InstPrefetcherKind::Markov),
            Just(InstPrefetcherKind::Tifs),
        ],
        dkind in prop_oneof![
            Just(DataPrefetcherKind::None),
            Just(DataPrefetcherKind::Stride),
            Just(DataPrefetcherKind::Ghb),
            Just(DataPrefetcherKind::BestOffset),
            Just(DataPrefetcherKind::Ampm),
        ],
        policy in 0u8..5,
        raw_cuts in proptest::collection::vec(2_000u64..220_000, 1..6),
        samples in proptest::collection::vec(5.0f64..40.0, 4..24),
    ) {
        let w = ehs_repro::workloads::by_name("gsmd").unwrap();
        let program = w.program();
        let cfg = grid_cfg(ikind, dkind, policy);
        let trace = PowerTrace::from_samples_mw(samples);

        let mut mono = Machine::with_trace(cfg.clone(), &program, trace.clone());
        let truth = mono.run().expect("monolithic run completes");
        let truth_digest = mono.state_digest(&program);

        // plan_at demands strictly increasing, nonzero boundaries.
        let mut cuts = raw_cuts;
        cuts.sort_unstable();
        cuts.dedup();
        let plan = plan_at(&cfg, &program, &trace, &cuts).expect("forward pass");
        let stitched = run_sliced_serial(&plan, &program, &trace).expect("sliced replay");
        prop_assert_eq!(&stitched.result, &truth, "sliced result diverged");
        prop_assert_eq!(
            stitched.state_digest, truth_digest,
            "sliced final state diverged (plan of {} slices)", plan.len()
        );
    }
}
