//! Reproducibility: identical configuration + trace => bit-identical
//! results. This is what makes cross-configuration speedups fair (the
//! paper's "same amount of input energy" methodology).

use ehs_repro::energy::TraceKind;
use ehs_repro::sim::{Ipex, Machine, SimConfig, SimResult};

fn run(cfg: SimConfig) -> SimResult {
    let w = ehs_repro::workloads::by_name("jpegd").unwrap();
    Machine::with_trace(
        cfg,
        &w.program(),
        TraceKind::RfOffice.synthesize(5, 300_000),
    )
    .run()
    .expect("completes")
}

#[test]
fn identical_runs_are_bit_identical() {
    for cfg in [
        SimConfig::default(),
        SimConfig::builder().ipex(Ipex::Both).build(),
        SimConfig::builder().no_prefetch().build(),
    ] {
        let a = run(cfg.clone());
        let b = run(cfg);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.nvm, b.nvm);
        assert_eq!(a.icache, b.icache);
        assert_eq!(a.dcache, b.dcache);
        assert_eq!(a.ibuf, b.ibuf);
        assert_eq!(a.dbuf, b.dbuf);
        assert_eq!(a.ipex_i, b.ipex_i);
        assert!((a.energy.total_nj() - b.energy.total_nj()).abs() < 1e-9);
    }
}

#[test]
fn trace_synthesis_is_stable_across_threads() {
    let handles: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(|| TraceKind::RfHome.synthesize(42, 50_000)))
        .collect();
    let traces: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for t in &traces[1..] {
        assert_eq!(*t, traces[0]);
    }
}

#[test]
fn workload_generation_is_stable() {
    let a = ehs_repro::workloads::by_name("susanc").unwrap().source();
    let b = ehs_repro::workloads::by_name("susanc").unwrap().source();
    assert_eq!(a, b);
}
