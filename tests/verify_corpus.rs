//! Regression corpus replay + verifier-of-the-verifier.
//!
//! Every committed case under `tests/corpus/*.json` is a fuzz-derived
//! adversarial power trace; replaying it through the differential oracle
//! (invariant sink attached) must produce a full architectural match.
//! A second test deliberately injects a restore-consistency bug and
//! checks that the oracle catches it and the shrinker minimizes the
//! reproducing trace to a handful of samples — proving the verification
//! stack would notice a real crash-consistency regression.

use std::path::Path;

use ehs_repro::isa::Reg;
use ehs_repro::sim::FaultPlan;
use ehs_repro::verify::{run_parallel, shrink_trace, CheckOutcome, CorpusCase};

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_replays_with_full_architectural_match() {
    let cases = CorpusCase::load_dir(&corpus_dir()).expect("corpus loads");
    assert!(
        cases.len() >= 4,
        "corpus unexpectedly small: {}",
        cases.len()
    );
    let outcomes = run_parallel(&cases, |case| (case.name.clone(), case.replay(None)));
    for (name, outcome) in outcomes {
        assert!(
            outcome.is_match(),
            "corpus case {name} no longer matches: {outcome:?}"
        );
    }
}

#[test]
fn injected_restore_fault_is_caught_and_shrunk() {
    // The deliberate bug: one register's nonvolatile flip-flop "fails",
    // so it restores as zero after every outage. The storm case from the
    // corpus exercises plenty of restores.
    let case = CorpusCase::load(&corpus_dir().join("storm-strings-ipex-both.json"))
        .expect("storm case exists");
    let fault = FaultPlan {
        skip_restore_reg: Some(Reg::Sp),
    };
    let outcome = case.replay(Some(fault));
    let CheckOutcome::Diverged(d) = &outcome else {
        panic!("injected fault went unnoticed: {outcome:?}");
    };
    assert!(
        d.regs.iter().any(|&(r, _, _)| r == Reg::Sp) || d.pc.is_some() || d.mem_digest.is_some(),
        "divergence does not implicate the faulted register: {d}"
    );

    // The shrinker must reduce the reproducing trace to a short vector
    // (acceptance bar: at most 50 samples) within a small run budget.
    let shrunk = shrink_trace(&case.samples_mw, 48, |cand| {
        let mut c = case.clone();
        c.samples_mw = cand.to_vec();
        c.replay(Some(fault)).is_divergence()
    });
    assert!(
        shrunk.len() <= 50,
        "shrinker left {} samples (wanted <= 50)",
        shrunk.len()
    );
    // And the shrunk trace still reproduces.
    let mut small = case.clone();
    small.samples_mw = shrunk;
    assert!(small.replay(Some(fault)).is_divergence());
}

/// Regenerates the committed corpus deterministically. Not part of the
/// test run: `cargo test --test verify_corpus -- --ignored regenerate`
/// rewrites `tests/corpus/*.json` after a change to the trace
/// synthesizer or the on-disk schema.
#[test]
#[ignore = "writes tests/corpus; run explicitly to regenerate"]
fn regenerate_corpus() {
    use ehs_repro::verify::fuzz::adversarial_trace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // (file stem, wanted strategy, workload, config): one pin per
    // adversarial synthesis strategy, on quick workloads so the debug
    // replay test stays fast.
    let wanted = [
        ("storm-strings-ipex-both", "storm", "strings", "ipex_both"),
        (
            "brownout-strings-baseline",
            "brownout",
            "strings",
            "baseline",
        ),
        (
            "threshold-hover-gsmd-ipex-i",
            "threshold-hover",
            "gsmd",
            "ipex_i",
        ),
        (
            "backup-window-gsmd-ipex-d",
            "backup-window",
            "gsmd",
            "ipex_d",
        ),
        (
            "random-walk-susanc-ipex-both",
            "random-walk",
            "susanc",
            "ipex_both",
        ),
    ];
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (stem, strategy, workload, config) in wanted {
        // Walk a deterministic stream until the strategy comes up.
        let mut rng = StdRng::seed_from_u64(ehs_repro::verify::parse_seed("0xEHS"));
        let samples = loop {
            let (s, samples) = adversarial_trace(&mut rng);
            if s == strategy {
                break samples;
            }
        };
        let case = CorpusCase {
            name: stem.to_string(),
            description: format!(
                "fuzz `{strategy}` strategy pinned on {workload}/{config} \
                 (seed 0xEHS); must replay to a full architectural match"
            ),
            workload: workload.to_string(),
            config: config.to_string(),
            samples_mw: samples,
        };
        assert!(
            case.replay(None).is_match(),
            "candidate corpus case {stem} does not match"
        );
        let path = dir.join(format!("{stem}.json"));
        std::fs::write(&path, case.to_json() + "\n").expect("write corpus case");
        println!("wrote {}", path.display());
    }
}
