//! Golden-state snapshot corpus drift test.
//!
//! Each committed file under `tests/corpus/snapshots/` is the complete
//! machine state of one (workload, configuration) pair at a fixed cycle
//! under a fixed weak supply (see `ehs_repro::verify::snapcorpus`).
//! Regenerating every entry from cold must reproduce the committed
//! bytes exactly: any change to instruction timing, energy accounting,
//! cache/prefetcher behaviour or outage handling shifts at least one
//! field and fails here — with a field-level diff, so the first drifted
//! quantity is named directly instead of buried in 30 kB of JSON.
//!
//! Intentional behaviour changes regenerate the corpus
//! (`cargo run --release -p ehs-bench --bin regen_snapshots`) and
//! commit the diff alongside the change.

use ehs_repro::sim::canon::content_diff;
use ehs_repro::sim::Snapshot;
use ehs_repro::verify::{run_parallel, snapcorpus};

#[test]
fn snapshot_corpus_has_not_drifted() {
    let dir = snapcorpus::corpus_dir();
    let specs = snapcorpus::specs();
    assert_eq!(specs.len(), 15);
    let checks = run_parallel(&specs, |spec| {
        let path = dir.join(spec.file_name());
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (run regen_snapshots)", path.display()));
        let fresh = snapcorpus::generate(spec);
        (spec.file_name(), committed, fresh)
    });
    let mut drifted = Vec::new();
    for (name, committed, fresh) in checks {
        if committed == snapcorpus::render(&fresh) {
            continue;
        }
        // Byte mismatch: name the drifted fields, not the whole file.
        let diff = match Snapshot::from_json(&committed) {
            Ok(old) => content_diff(&old, &fresh).join("\n    "),
            Err(e) => format!("committed file no longer parses: {e}"),
        };
        drifted.push(format!("  {name}:\n    {diff}"));
    }
    assert!(
        drifted.is_empty(),
        "{} of 15 golden snapshots drifted (intentional? rerun regen_snapshots and \
         commit the diff):\n{}",
        drifted.len(),
        drifted.join("\n")
    );
}

#[test]
fn corpus_entries_capture_post_outage_state() {
    // The corpus supply is weak by construction; every committed entry
    // must have survived at least one outage, so backup/restore and
    // recharge state is pinned too.
    let dir = snapcorpus::corpus_dir();
    for spec in snapcorpus::specs() {
        let path = dir.join(spec.file_name());
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (run regen_snapshots)", path.display()));
        let snap = Snapshot::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            snap.stats.power_cycles > 1,
            "{}: captured before any outage (power_cycles = {})",
            spec.file_name(),
            snap.stats.power_cycles
        );
        // The capture lands at the first pause point at or after the
        // target cycle (instruction latencies and recharge ticks are
        // indivisible), so allow the sub-tick overshoot.
        assert!(
            snap.cycle >= snapcorpus::SNAP_CYCLE && snap.cycle < snapcorpus::SNAP_CYCLE + 10_000,
            "{}: captured at cycle {}",
            spec.file_name(),
            snap.cycle
        );
    }
}
