//! Cross-crate integration: the cycle-level simulator must preserve each
//! workload's architectural result across power failures — the whole
//! point of the NVSRAMCache crash-consistency model. The comparison is
//! the full differential oracle from `ehs-verify`: every register plus
//! an FNV-1a digest of the entire memory image must match the golden
//! interpreter, even when execution is chopped into dozens of power
//! cycles — not just the `a0` checksum, which could mask corruption in
//! memory the checksum never reads back.

use ehs_repro::energy::{PowerTrace, TraceKind};
use ehs_repro::isa::Reg;
use ehs_repro::sim::{Ipex, SimConfig};
use ehs_repro::verify::oracle::{check_program, golden_state};

/// Golden-runs the workload, sanity-checks the reference checksum, then
/// machine-runs it and demands full architectural equality (all 16
/// registers, final pc, memory digest) with the invariant sink attached.
fn check(workload: &ehs_repro::workloads::Workload, cfg: SimConfig, trace: PowerTrace) {
    let program = workload.program();
    let golden = golden_state(&program, cfg.nvm.size_bytes as usize)
        .unwrap_or_else(|e| panic!("{}: golden run faulted: {e}", workload.name()));
    assert_eq!(
        golden.regs[Reg::A0.index()],
        workload.reference_checksum(),
        "{}: golden model disagrees with the reference checksum",
        workload.name()
    );
    let outcome = check_program(&program, &Ok(golden), &cfg, &trace, None, true);
    assert!(
        outcome.is_match(),
        "{}: architectural state corrupted across power cycles: {outcome:?}",
        workload.name()
    );
}

#[test]
fn full_state_survives_intermittent_execution_baseline() {
    // A weak supply so every workload crosses many outages.
    for w in &ehs_repro::workloads::SUITE {
        check(
            w,
            SimConfig::default(),
            TraceKind::RfHome.synthesize(9, 400_000),
        );
    }
}

#[test]
fn full_state_survives_intermittent_execution_ipex() {
    for w in &ehs_repro::workloads::SUITE {
        check(
            w,
            SimConfig::builder().ipex(Ipex::Both).build(),
            TraceKind::RfHome.synthesize(9, 400_000),
        );
    }
}

#[test]
fn full_state_survives_under_every_trace_kind() {
    let w = ehs_repro::workloads::by_name("rijndaele").unwrap();
    for kind in TraceKind::ALL {
        check(
            w,
            SimConfig::builder().ipex(Ipex::Both).build(),
            kind.synthesize(3, 400_000),
        );
    }
}

#[test]
fn full_state_matches_under_steady_power_too() {
    let w = ehs_repro::workloads::by_name("fft").unwrap();
    check(
        w,
        SimConfig::builder().no_prefetch().build(),
        PowerTrace::constant_mw(50.0, 8),
    );
}
