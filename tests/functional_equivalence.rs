//! Cross-crate integration: the cycle-level simulator must preserve each
//! workload's architectural result across power failures — the whole
//! point of the NVSRAMCache crash-consistency model. Every workload's
//! checksum must match its reference model even when execution is
//! chopped into dozens of power cycles.

use ehs_repro::energy::{PowerTrace, TraceKind};
use ehs_repro::isa::Reg;
use ehs_repro::sim::{Machine, SimConfig};

fn check(workload: &ehs_repro::workloads::Workload, cfg: SimConfig, trace: PowerTrace) {
    let mut m = Machine::with_trace(cfg, &workload.program(), trace);
    let r = m
        .run()
        .unwrap_or_else(|e| panic!("{} failed: {e}", workload.name()));
    assert_eq!(
        m.reg(Reg::A0),
        workload.reference_checksum(),
        "{}: checksum corrupted across {} power cycles",
        workload.name(),
        r.stats.power_cycles
    );
}

#[test]
fn checksums_survive_intermittent_execution_baseline() {
    // A weak supply so every workload crosses many outages.
    for w in &ehs_repro::workloads::SUITE {
        check(
            w,
            SimConfig::baseline(),
            TraceKind::RfHome.synthesize(9, 400_000),
        );
    }
}

#[test]
fn checksums_survive_intermittent_execution_ipex() {
    for w in &ehs_repro::workloads::SUITE {
        check(
            w,
            SimConfig::ipex_both(),
            TraceKind::RfHome.synthesize(9, 400_000),
        );
    }
}

#[test]
fn checksums_survive_under_every_trace_kind() {
    let w = ehs_repro::workloads::by_name("rijndaele").unwrap();
    for kind in TraceKind::ALL {
        check(w, SimConfig::ipex_both(), kind.synthesize(3, 400_000));
    }
}

#[test]
fn checksum_matches_under_steady_power_too() {
    let w = ehs_repro::workloads::by_name("fft").unwrap();
    check(
        w,
        SimConfig::no_prefetch(),
        PowerTrace::constant_mw(50.0, 8),
    );
}
