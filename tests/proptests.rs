//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use ehs_repro::energy::{Capacitor, CapacitorConfig, PowerTrace};
use ehs_repro::isa::{Instr, MemWidth, Reg};
use ehs_repro::mem::{block_of, Cache, CacheConfig, PrefetchBuffer, BLOCK_SIZE};
use ehs_repro::prefetch::{
    AccessEvent, AccessOutcome, DataPrefetcherKind, InstPrefetcherKind, Prefetcher,
};
use ehs_repro::sim::{Ipex, Machine, SimConfig, Snapshot};

/// An arbitrary demand-access event; instruction prefetchers only look at
/// the pc, so the same stream works for both trains.
fn arb_event() -> impl Strategy<Value = AccessEvent> {
    let outcome = prop_oneof![
        Just(AccessOutcome::CacheHit),
        Just(AccessOutcome::BufferHit),
        Just(AccessOutcome::Miss),
    ];
    (
        0u32..0x400,
        0u32..0x2000,
        outcome,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(pc, addr, outcome, is_write, is_data)| {
            // Word-aligned pcs, byte-granular data addresses.
            if is_data {
                AccessEvent::data(pc * 4, addr, outcome, is_write)
            } else {
                AccessEvent::fetch(pc * 4, outcome)
            }
        })
}

/// Replays `events` through `p` and returns the concatenated candidate
/// stream (with per-event boundaries, so interleavings can't alias).
fn candidate_stream(p: &mut dyn Prefetcher, events: &[AccessEvent]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut stream = Vec::with_capacity(events.len());
    for e in events {
        out.clear();
        p.observe(e, &mut out);
        stream.push(out.clone());
    }
    stream
}

/// Checks that after `power_loss` the prefetcher behaves exactly like a
/// freshly built one: all volatile training state (tables, histories,
/// learned offsets) must be gone, per the paper's volatile-metadata
/// model.
fn assert_power_loss_wipes(
    build: &dyn Fn() -> Box<dyn Prefetcher>,
    warmup: &[AccessEvent],
    probe: &[AccessEvent],
) {
    let mut survivor = build();
    let _ = candidate_stream(survivor.as_mut(), warmup);
    survivor.power_loss();
    let mut fresh = build();
    assert_eq!(
        candidate_stream(survivor.as_mut(), probe),
        candidate_stream(fresh.as_mut(), probe),
        "{}: training state survived power loss",
        survivor.name()
    );
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_imm18() -> impl Strategy<Value = i32> {
    -(1i32 << 17)..(1i32 << 17)
}

fn arb_imm22() -> impl Strategy<Value = i32> {
    -(1i32 << 21)..(1i32 << 21)
}

fn r3() -> impl Strategy<Value = (Reg, Reg, Reg)> {
    (arb_reg(), arb_reg(), arb_reg())
}

fn i3() -> impl Strategy<Value = (Reg, Reg, i32)> {
    (arb_reg(), arb_reg(), arb_imm18())
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        r3().prop_map(|(rd, rs1, rs2)| Instr::Add { rd, rs1, rs2 }),
        r3().prop_map(|(rd, rs1, rs2)| Instr::Mul { rd, rs1, rs2 }),
        r3().prop_map(|(rd, rs1, rs2)| Instr::Sltu { rd, rs1, rs2 }),
        i3().prop_map(|(rd, rs1, imm)| Instr::Addi { rd, rs1, imm }),
        i3().prop_map(|(rd, rs1, imm)| Instr::Xori { rd, rs1, imm }),
        (arb_reg(), arb_imm22()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (
            arb_reg(),
            arb_reg(),
            arb_imm18(),
            prop_oneof![
                Just(MemWidth::Byte),
                Just(MemWidth::Half),
                Just(MemWidth::Word)
            ]
        )
            .prop_map(|(rd, base, offset, width)| Instr::Load {
                rd,
                base,
                offset,
                width,
                signed: width != MemWidth::Word
            }),
        (
            arb_reg(),
            arb_reg(),
            arb_imm18(),
            prop_oneof![
                Just(MemWidth::Byte),
                Just(MemWidth::Half),
                Just(MemWidth::Word)
            ]
        )
            .prop_map(|(src, base, offset, width)| Instr::Store {
                src,
                base,
                offset,
                width
            }),
        i3().prop_map(|(rs1, rs2, offset)| Instr::Beq { rs1, rs2, offset }),
        i3().prop_map(|(rs1, rs2, offset)| Instr::Bgeu { rs1, rs2, offset }),
        (arb_reg(), arb_imm22()).prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (arb_reg(), arb_reg(), arb_imm18()).prop_map(|(rd, base, offset)| Instr::Jalr {
            rd,
            base,
            offset
        }),
        Just(Instr::Halt),
    ]
}

proptest! {
    /// Every instruction survives an encode/decode round trip.
    #[test]
    fn instr_encode_decode_round_trip(i in arb_instr()) {
        let decoded = Instr::decode(i.encode()).expect("valid encoding");
        prop_assert_eq!(decoded, i);
    }

    /// The cache agrees with a naive software LRU model on arbitrary
    /// access streams.
    #[test]
    fn cache_matches_naive_lru_model(accesses in proptest::collection::vec((0u32..0x4000, any::<bool>()), 1..400)) {
        let cfg = CacheConfig { size_bytes: 256, assoc: 2 };
        let mut cache = Cache::new(cfg);
        // Naive model: per set, a Vec of blocks in LRU order (front = LRU).
        let sets = cfg.num_sets();
        let mut model: Vec<Vec<u32>> = vec![Vec::new(); sets as usize];
        for (addr, is_write) in accesses {
            let block = block_of(addr);
            let set = ((block / BLOCK_SIZE) % sets) as usize;
            let hit = cache.access(addr, is_write);
            let model_hit = model[set].contains(&block);
            prop_assert_eq!(hit, model_hit, "addr {:#x}", addr);
            if model_hit {
                model[set].retain(|b| *b != block);
                model[set].push(block);
            } else {
                cache.fill(addr, is_write);
                if model[set].len() == cfg.assoc as usize {
                    model[set].remove(0);
                }
                model[set].push(block);
            }
        }
    }

    /// The capacitor never exceeds its capacity, never goes negative,
    /// and voltage is monotone in stored energy.
    #[test]
    fn capacitor_invariants(ops in proptest::collection::vec((any::<bool>(), 0.0f64..500.0), 1..200)) {
        let cfg = CapacitorConfig::paper_default();
        let mut cap = Capacitor::full(cfg);
        let max_energy = cfg.energy_at_nj(cfg.v_max);
        for (harvest, amount) in ops {
            let before = cap.energy_nj();
            if harvest {
                cap.harvest_nj(amount);
                prop_assert!(cap.energy_nj() >= before - 1e-9);
            } else {
                cap.consume_nj(amount);
                prop_assert!(cap.energy_nj() <= before + 1e-9);
            }
            prop_assert!(cap.energy_nj() >= 0.0);
            prop_assert!(cap.energy_nj() <= max_energy + 1e-9);
            prop_assert!(cap.voltage() <= cfg.v_max + 1e-9);
        }
    }

    /// Prefetch-buffer occupancy is bounded and its statistics conserve:
    /// every inserted entry is eventually useful, evicted, lost, or
    /// still resident.
    #[test]
    fn prefetch_buffer_conservation(ops in proptest::collection::vec((0u8..4, 0u32..0x200), 1..300)) {
        let mut buf = PrefetchBuffer::new(4);
        for (op, val) in ops {
            let addr = val * 16;
            match op {
                0 | 1 => {
                    let _ = buf.insert(addr, u64::from(val));
                }
                2 => {
                    let _ = buf.lookup(addr, 0);
                }
                _ => {
                    let _ = buf.power_loss();
                }
            }
            prop_assert!(buf.len() <= buf.capacity());
            let s = buf.stats();
            prop_assert_eq!(s.inserted, s.useful + s.evicted_unused + s.lost_unused + buf.len() as u64);
        }
    }

    /// Power-trace text serialisation round-trips arbitrary sample sets.
    #[test]
    fn trace_text_round_trip(samples in proptest::collection::vec(0.0f64..100.0, 1..64)) {
        let t = PowerTrace::from_samples_mw(samples);
        let back = PowerTrace::from_text(&t.to_text()).expect("parses");
        prop_assert_eq!(back.len(), t.len());
        for i in 0..t.len() as u64 {
            prop_assert!((back.power_mw_at(i) - t.power_mw_at(i)).abs() < 1e-5);
        }
    }

    /// `power_loss` fully wipes every instruction prefetcher's volatile
    /// state: after a wipe, the candidate stream on any subsequent
    /// access sequence equals a fresh prefetcher's.
    #[test]
    fn inst_prefetcher_power_loss_wipes_all_state(
        warmup in proptest::collection::vec(arb_event(), 0..120),
        probe in proptest::collection::vec(arb_event(), 1..120),
        degree in 1u32..5,
    ) {
        for kind in [
            InstPrefetcherKind::None,
            InstPrefetcherKind::Sequential,
            InstPrefetcherKind::Markov,
            InstPrefetcherKind::Tifs,
        ] {
            assert_power_loss_wipes(&|| kind.build(degree), &warmup, &probe);
        }
    }

    /// Same property for every data prefetcher kind.
    #[test]
    fn data_prefetcher_power_loss_wipes_all_state(
        warmup in proptest::collection::vec(arb_event(), 0..120),
        probe in proptest::collection::vec(arb_event(), 1..120),
        degree in 1u32..5,
    ) {
        for kind in [
            DataPrefetcherKind::None,
            DataPrefetcherKind::Stride,
            DataPrefetcherKind::Ghb,
            DataPrefetcherKind::BestOffset,
            DataPrefetcherKind::Ampm,
        ] {
            assert_power_loss_wipes(&|| kind.build(degree), &warmup, &probe);
        }
    }

    /// Snapshot/resume is computation-neutral for *every* prefetcher
    /// kind × *every* throttling policy: running to a random cycle,
    /// serializing the complete machine state through JSON, resuming a
    /// fresh machine from it, and running on must land in the
    /// bit-identical full state (digest covers registers, memory,
    /// caches, prefetcher/throttle state, capacitor energy, statistics,
    /// energy totals and event counts) as the uninterrupted run. Random
    /// weak supplies make many snapshots land mid-outage (recharge
    /// phase); mid-backup pauses are pinned by a dedicated `ehs-sim`
    /// unit test.
    #[test]
    fn snapshot_resume_equivalence_across_prefetchers(
        ikind in prop_oneof![
            Just(InstPrefetcherKind::None),
            Just(InstPrefetcherKind::Sequential),
            Just(InstPrefetcherKind::Markov),
            Just(InstPrefetcherKind::Tifs),
        ],
        dkind in prop_oneof![
            Just(DataPrefetcherKind::None),
            Just(DataPrefetcherKind::Stride),
            Just(DataPrefetcherKind::Ghb),
            Just(DataPrefetcherKind::BestOffset),
            Just(DataPrefetcherKind::Ampm),
        ],
        policy in 0u8..5,
        split in 2_000u64..150_000,
        extra in 2_000u64..80_000,
        samples in proptest::collection::vec(0.5f64..40.0, 4..24),
    ) {
        use ehs_repro::ipex::{
            HysteresisConfig, PolicyConfig, PredictiveConfig, StaticDegreeConfig,
        };
        let w = ehs_repro::workloads::by_name("strings").unwrap();
        let program = w.program();
        let mut cfg = match policy {
            0 => SimConfig::builder().build(),
            1 => SimConfig::builder().ipex(Ipex::Both).build(),
            2 => SimConfig::builder()
                .throttle_policy(
                    Ipex::Both,
                    PolicyConfig::Predictive(PredictiveConfig::paper_default()),
                )
                .build(),
            3 => SimConfig::builder()
                .throttle_policy(
                    Ipex::Both,
                    PolicyConfig::Hysteresis(HysteresisConfig::paper_default()),
                )
                .build(),
            _ => SimConfig::builder()
                .throttle_policy(
                    Ipex::Both,
                    PolicyConfig::StaticDegree(StaticDegreeConfig::conservative()),
                )
                .build(),
        };
        cfg.inst_prefetcher = ikind;
        cfg.data_prefetcher = dkind;
        // Small memory keeps per-case snapshot capture cheap.
        cfg.nvm.size_bytes = 1 << 21;
        let trace = PowerTrace::from_samples_mw(samples);
        let target = split + extra;

        let mut whole = Machine::with_trace(cfg.clone(), &program, trace.clone());
        whole.run_until(target).expect("whole run");

        let mut first = Machine::with_trace(cfg, &program, trace.clone());
        first.run_until(split).expect("first leg");
        let snap = Snapshot::from_json(&first.snapshot(&program).to_json())
            .expect("snapshot round-trips through JSON");
        let mut resumed = Machine::resume(&snap, &program, trace).expect("snapshot resumes");
        prop_assert_eq!(resumed.state_digest(&program), snap.digest());
        resumed.run_until(target).expect("resumed leg");
        prop_assert_eq!(
            resumed.state_digest(&program),
            whole.state_digest(&program),
            "split at {} diverged from the uninterrupted run", snap.cycle
        );
    }

    /// The IPEX degree ladder is monotone in voltage: a lower voltage
    /// never yields a higher prefetch degree.
    #[test]
    fn ipex_degree_monotone_in_voltage(mut voltages in proptest::collection::vec(3.0f64..3.6, 2..50)) {
        use ehs_repro::ipex::{IpexConfig, IpexController};
        // Feed a descending voltage ramp: degree must never increase.
        voltages.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let mut ctl = IpexController::new(IpexConfig::paper_default());
        let mut last = u32::MAX;
        for v in voltages {
            ctl.observe_voltage(v);
            let d = ctl.current_degree();
            prop_assert!(d <= last, "degree rose from {last} to {d} as voltage fell");
            last = d;
        }
    }

    /// A power failure wipes the hysteresis controller's volatile EWMA:
    /// after the failure/reboot pair its degree decisions on any voltage
    /// sequence equal a fresh controller's (the nonvolatile counters
    /// keep accumulating, per the policy's state rules).
    #[test]
    fn hysteresis_power_loss_wipes_ewma(
        warmup in proptest::collection::vec(2.5f64..3.6, 1..80),
        probe in proptest::collection::vec(2.5f64..3.6, 1..80),
    ) {
        use ehs_repro::ipex::{HysteresisConfig, HysteresisController, ThrottlePolicy};
        let cfg = HysteresisConfig::paper_default();
        let mut survivor = HysteresisController::new(cfg);
        for &v in &warmup {
            survivor.observe_voltage(v);
        }
        let cycles_before = survivor.stats().power_cycles;
        survivor.on_power_failure();
        survivor.on_reboot();
        let mut fresh = HysteresisController::new(cfg);
        for &v in &probe {
            survivor.observe_voltage(v);
            fresh.observe_voltage(v);
            prop_assert_eq!(
                survivor.current_degree(),
                fresh.current_degree(),
                "EWMA state survived the power failure"
            );
        }
        prop_assert_eq!(survivor.stats().power_cycles, cycles_before + 1);
    }

    /// A power failure wipes the predictive controller's volatile
    /// sampled history (previous level, context, sample counter) while
    /// its NVFF transition table records the outage and survives.
    #[test]
    fn predictive_power_loss_wipes_history_but_keeps_table(
        voltages in proptest::collection::vec(2.5f64..3.6, 129..600),
    ) {
        use ehs_repro::ipex::{PredictiveConfig, PredictiveController, ThrottlePolicy};
        use ehs_repro::mem::Persist;
        let mut ctl = PredictiveController::new(PredictiveConfig::paper_default());
        // >= 2 full sample periods of observations, so a context forms.
        for &v in &voltages {
            ctl.observe_voltage(v);
        }
        let before = Persist::export_state(&ctl);
        prop_assert!(before.context.is_some(), "warmup must establish a context");
        let table_before: u32 = before.table.iter().sum();
        ctl.on_power_failure();
        let after = Persist::export_state(&ctl);
        prop_assert_eq!(after.prev_level, None);
        prop_assert_eq!(after.context, None);
        prop_assert_eq!(after.obs_count, 0);
        let table_after: u32 = after.table.iter().sum();
        prop_assert!(
            table_after > 0 && table_after >= table_before,
            "the outage must be recorded in the surviving table \
             ({table_before} -> {table_after})"
        );
        prop_assert_eq!(after.adaptations, before.adaptations + 1);
    }
}
