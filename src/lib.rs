//! # ehs-repro — reproduction package for IPEX (ISCA '25)
//!
//! This facade crate re-exports the whole workspace so examples and
//! downstream users can depend on one crate:
//!
//! * [`isa`] — the EHS-RV instruction set, assembler and functional
//!   interpreter,
//! * [`workloads`] — the 20 MediaBench/MiBench-style benchmark kernels,
//! * [`mem`] — caches, prefetch buffers and the NVM model,
//! * [`prefetch`] — the six hardware prefetchers,
//! * [`energy`] — capacitor, power traces and energy accounting,
//! * [`ipex`] — the paper's contribution: the intermittence-aware
//!   prefetching extension,
//! * [`sim`] — the cycle-level nonvolatile-processor simulator,
//! * [`verify`] — the differential oracle, adversarial outage fuzzer
//!   and invariant checkers guarding the simulator's correctness.
//!
//! ```
//! use ehs_repro::sim::{Machine, SimConfig};
//!
//! let workload = ehs_repro::workloads::by_name("gsmd").unwrap();
//! let trace = ehs_repro::energy::PowerTrace::constant_mw(50.0, 16);
//! let mut machine = Machine::with_trace(SimConfig::builder().build(), &workload.program(), trace);
//! let result = machine.run().expect("completes");
//! assert!(result.stats.instructions > 10_000);
//! ```

pub use ehs_energy as energy;
pub use ehs_isa as isa;
pub use ehs_mem as mem;
pub use ehs_prefetch as prefetch;
pub use ehs_sim as sim;
pub use ehs_verify as verify;
pub use ehs_workloads as workloads;
pub use ipex;
