//! Offline stand-in for `criterion`.
//!
//! Implements the small API surface the workspace's benches use:
//! `Criterion::bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark warms
//! up briefly, then runs timed batches and reports the median ns/iter
//! (median over batches is robust to scheduler noise on CI runners).

// Shim crate: keep clippy quiet rather than polishing stand-in code.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(60);
const MEASURE: Duration = Duration::from_millis(240);
const BATCHES: usize = 12;

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: None };
        f(&mut b);
        match b.ns_per_iter {
            Some(ns) => println!("bench {name:<40} {ns:>12.1} ns/iter"),
            None => println!("bench {name:<40} (no iter() call)"),
        }
        self
    }
}

pub struct Bencher {
    ns_per_iter: Option<f64>,
}

impl Bencher {
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let ns_estimate = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Size batches so each takes roughly MEASURE / BATCHES.
        let batch_ns = MEASURE.as_nanos() as f64 / BATCHES as f64;
        let batch_iters = ((batch_ns / ns_estimate) as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..batch_iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch_iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
