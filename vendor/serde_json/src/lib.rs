//! Offline stand-in for `serde_json`, rendering the vendored serde's
//! [`Content`] tree to JSON text and parsing JSON text back.
//!
//! Output format matches serde_json for the shapes this workspace uses:
//! compact `to_string`, 2-space-indented `to_string_pretty`, floats with
//! integral values printed as `1.0`, unit enum variants as bare strings.

// Shim crate: keep clippy quiet rather than polishing stand-in code.
#![allow(clippy::all)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_content(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_content(), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_compact(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_str(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(c: &Content, indent: usize, out: &mut String) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_str(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        Content::Seq(_) => out.push_str("[]"),
        Content::Map(_) => out.push_str("{}"),
        other => write_compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// serde_json prints non-finite floats as `null`, and finite floats with
/// no fractional part as `N.0` (Ryu shortest otherwise; Rust's `{}` for
/// f64 is also shortest-round-trip, so it matches for our values).
fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_seq(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}`")),
            }
        }
    }
}
