//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides the subset of serde's surface the workspace uses, built on a
//! small JSON-like [`Content`] tree instead of serde's visitor machinery:
//!
//! * [`Serialize`] — convert a value *to* a `Content` tree,
//! * [`Deserialize`] — reconstruct a value *from* a `Content` tree,
//! * `#[derive(Serialize, Deserialize)]` via the vendored `serde_derive`
//!   (enabled by the `derive` feature, same as real serde),
//! * impls for the primitive/std types the workspace serializes.
//!
//! The companion `serde_json` vendored crate renders `Content` to JSON
//! text and parses JSON text back into `Content`, matching serde_json's
//! output format for the shapes used here (externally tagged enums,
//! `rename_all` handled at derive time, `1.0`-style float formatting).

// Shim crate: keep clippy quiet rather than polishing stand-in code.
#![allow(clippy::all)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model: a JSON-shaped tree.
///
/// Maps preserve insertion order (struct field declaration order), which
/// keeps serialized output stable and byte-identical across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced during (de)serialization.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    pub fn expected(what: &str) -> Self {
        Error {
            msg: format!("expected {what}"),
        }
    }

    pub fn missing_field(field: &str) -> Self {
        Error {
            msg: format!("missing field `{field}`"),
        }
    }

    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error {
            msg: format!("unknown variant `{variant}` for enum `{ty}`"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up a struct field in a `Content::Map` body (derive helper).
pub fn map_field<'c>(m: &'c [(String, Content)], field: &str) -> Result<&'c Content, Error> {
    m.iter()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::missing_field(field))
}

/// Serialize a value into the [`Content`] data model.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Deserialize a value from the [`Content`] data model.
pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool")),
        }
    }
}

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    _ => return Err(Error::expected("unsigned integer")),
                };
                <$t>::try_from(v).map_err(|_| Error::expected("in-range unsigned integer"))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => {
                        i64::try_from(*v).map_err(|_| Error::expected("in-range integer"))?
                    }
                    _ => return Err(Error::expected("integer")),
                };
                <$t>::try_from(v).map_err(|_| Error::expected("in-range integer"))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            _ => Err(Error::expected("number")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

/// Identity impls so callers can decode to the raw [`Content`] tree and
/// pick it apart leniently (e.g. schema-migration fallbacks).
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::expected("sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let v: Vec<T> = Vec::from_content(c)?;
        <[T; N]>::try_from(v).map_err(|_| Error::expected("array of correct length"))
    }
}

impl<K, V> Serialize for BTreeMap<K, V>
where
    K: fmt::Display,
    V: Serialize,
{
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_map()
            .ok_or_else(|| Error::expected("map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}
