//! Offline stand-in for `rand` 0.8.
//!
//! Provides the subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` convenience methods
//! `gen`, `gen_bool`, `gen_range`. The generator is xoshiro256++ seeded
//! via splitmix64 — deterministic and portable, but the streams differ
//! from the real crate's ChaCha12-based StdRng, so any statistics pinned
//! to exact seed outputs were recalibrated when this shim was vendored.

// Shim crate: keep clippy quiet rather than polishing stand-in code.
#![allow(clippy::all)]

use std::ops::Range;

/// Core RNG interface: a source of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of type `T`; `T = f64` yields uniform [0, 1).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Samples uniformly from `range` (half-open).
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by `Rng::gen` (analogue of rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Range types usable with `Rng::gen_range`.
pub trait SampleRange: Sized {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleRange for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + (range.end - range.start) * f64::sample(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (range.start as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ with splitmix64 seeding.
    /// (The real crate's StdRng is ChaCha12; only determinism, not the
    /// exact stream, is contract here.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.05..0.5);
            assert!((0.05..0.5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_rate_is_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }
}
