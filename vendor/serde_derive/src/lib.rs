//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment,
//! so the workspace vendors a minimal `serde` (see `vendor/serde`) whose
//! data model is a small JSON-like `Content` tree. This proc-macro crate
//! derives that crate's `Serialize`/`Deserialize` traits for the type
//! shapes the workspace actually uses:
//!
//! * structs with named fields,
//! * enums with unit, newtype/tuple, and struct variants
//!   (externally tagged, like real serde),
//! * the container attribute `#[serde(rename_all = "kebab-case")]`
//!   (and `"snake_case"`); other `#[serde(...)]` attributes are ignored.
//!
//! No `syn`/`quote` are available offline, so parsing walks the raw
//! `TokenStream` directly. Generics are not supported (nothing in the
//! workspace derives on a generic type).

// Shim crate: keep clippy quiet rather than polishing stand-in code.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    item.impl_serialize()
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    item.impl_deserialize()
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsed shape
// ---------------------------------------------------------------------

enum Body {
    /// Named fields of a struct.
    Struct(Vec<String>),
    /// Enum variants: (name, fields). `None` = unit, `Some(Named(..))`
    /// = struct variant, `Some(Tuple(n))` = tuple variant of arity n.
    Enum(Vec<(String, VariantFields)>),
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    rename_all: Option<String>,
    body: Body,
}

/// Applies a container-level `rename_all` rule to a variant name.
fn apply_rename(rule: Option<&str>, ident: &str) -> String {
    match rule {
        Some("kebab-case") => camel_to_separated(ident, '-'),
        Some("snake_case") => camel_to_separated(ident, '_'),
        Some("lowercase") => ident.to_lowercase(),
        Some("UPPERCASE") => ident.to_uppercase(),
        _ => ident.to_owned(),
    }
}

fn camel_to_separated(ident: &str, sep: char) -> String {
    let mut out = String::with_capacity(ident.len() + 4);
    for (i, ch) in ident.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push(sep);
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut rename_all = None;

    // Leading attributes (doc comments, #[serde(...)], other derives'
    // helper attributes) and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if let Some(rule) = extract_rename_all(g.stream()) {
                        rename_all = Some(rule);
                    }
                }
                i += 2;
            }
            TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                i += 1;
                // `pub(crate)` and friends.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive shim does not support generic type `{name}`");
        }
    }
    let body_group = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => i += 1,
            None => panic!("no braced body found for `{name}`"),
        }
    };

    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_named_fields(body_group.stream())),
        "enum" => Body::Enum(parse_variants(body_group.stream())),
        other => panic!("cannot derive for `{other} {name}`"),
    };
    Item {
        name,
        rename_all,
        body,
    }
}

/// Extracts `rename_all = "..."` from the token stream of a
/// `#[serde(...)]` attribute group, if present.
fn extract_rename_all(attr: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    // Shape: serde ( rename_all = "rule" , ... )
    match tokens.first() {
        Some(TokenTree::Ident(id)) if *id.to_string() == *"serde" => {}
        _ => return None,
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        if let TokenTree::Ident(id) = &inner[j] {
            if *id.to_string() == *"rename_all" {
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (inner.get(j + 1), inner.get(j + 2))
                {
                    if eq.as_char() == '=' {
                        return Some(lit.to_string().trim_matches('"').to_owned());
                    }
                }
            }
        }
        j += 1;
    }
    None
}

/// Parses `name: Type, ...` named-field lists, skipping attributes,
/// visibility and the type tokens (types may contain `<...>` generics,
/// grouped `[...]`/`(...)` tokens and `::` paths).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        // Skip visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if *id.to_string() == *"pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("expected field name, found {other}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: consume until a top-level comma. Track `<`/`>`
        // nesting manually (they are plain puncts, not groups).
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // the comma (or past-the-end)
        fields.push(name);
    }
    fields
}

/// Parses enum variants: `Name`, `Name(T, ...)`, or `Name { f: T, ... }`.
fn parse_variants(stream: TokenStream) -> Vec<(String, VariantFields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

/// Counts top-level comma-separated entries of a tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

// ---------------------------------------------------------------------
// Code generation (string-built, then parsed back into a TokenStream)
// ---------------------------------------------------------------------

impl Item {
    fn impl_serialize(&self) -> String {
        let name = &self.name;
        let body = match &self.body {
            Body::Struct(fields) => {
                let mut pushes = String::new();
                for f in fields {
                    pushes.push_str(&format!(
                        "m.push((\"{f}\".to_string(), serde::Serialize::to_content(&self.{f})));\n"
                    ));
                }
                format!(
                    "let mut m: Vec<(String, serde::Content)> = Vec::new();\n{pushes}serde::Content::Map(m)"
                )
            }
            Body::Enum(variants) => {
                let mut arms = String::new();
                for (v, fields) in variants {
                    let tag = apply_rename(self.rename_all.as_deref(), v);
                    match fields {
                        VariantFields::Unit => arms.push_str(&format!(
                            "{name}::{v} => serde::Content::Str(\"{tag}\".to_string()),\n"
                        )),
                        VariantFields::Tuple(1) => arms.push_str(&format!(
                            "{name}::{v}(f0) => serde::Content::Map(vec![(\"{tag}\".to_string(), serde::Serialize::to_content(f0))]),\n"
                        )),
                        VariantFields::Tuple(n) => {
                            let pats: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let elems: Vec<String> = pats
                                .iter()
                                .map(|p| format!("serde::Serialize::to_content({p})"))
                                .collect();
                            arms.push_str(&format!(
                                "{name}::{v}({}) => serde::Content::Map(vec![(\"{tag}\".to_string(), serde::Content::Seq(vec![{}]))]),\n",
                                pats.join(", "),
                                elems.join(", ")
                            ));
                        }
                        VariantFields::Named(fs) => {
                            let pats = fs.join(", ");
                            let mut pushes = String::new();
                            for f in fs {
                                pushes.push_str(&format!(
                                    "fm.push((\"{f}\".to_string(), serde::Serialize::to_content({f})));\n"
                                ));
                            }
                            arms.push_str(&format!(
                                "{name}::{v} {{ {pats} }} => {{\nlet mut fm: Vec<(String, serde::Content)> = Vec::new();\n{pushes}serde::Content::Map(vec![(\"{tag}\".to_string(), serde::Content::Map(fm))])\n}}\n"
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        };
        format!(
            "impl serde::Serialize for {name} {{\n fn to_content(&self) -> serde::Content {{\n{body}\n}}\n}}\n"
        )
    }

    fn impl_deserialize(&self) -> String {
        let name = &self.name;
        let body = match &self.body {
            Body::Struct(fields) => {
                let mut gets = String::new();
                for f in fields {
                    gets.push_str(&format!(
                        "{f}: serde::Deserialize::from_content(serde::map_field(m, \"{f}\")?)?,\n"
                    ));
                }
                format!(
                    "let m = c.as_map().ok_or_else(|| serde::Error::expected(\"map for struct {name}\"))?;\nOk({name} {{\n{gets}}})"
                )
            }
            Body::Enum(variants) => {
                let mut unit_arms = String::new();
                let mut data_arms = String::new();
                for (v, fields) in variants {
                    let tag = apply_rename(self.rename_all.as_deref(), v);
                    match fields {
                        VariantFields::Unit => {
                            unit_arms.push_str(&format!("\"{tag}\" => Ok({name}::{v}),\n"));
                        }
                        VariantFields::Tuple(1) => data_arms.push_str(&format!(
                            "\"{tag}\" => Ok({name}::{v}(serde::Deserialize::from_content(v)?)),\n"
                        )),
                        VariantFields::Tuple(n) => {
                            let mut elems = String::new();
                            for k in 0..*n {
                                elems.push_str(&format!(
                                    "serde::Deserialize::from_content(seq.get({k}).ok_or_else(|| serde::Error::expected(\"tuple element\"))?)?,\n"
                                ));
                            }
                            data_arms.push_str(&format!(
                                "\"{tag}\" => {{\nlet seq = v.as_seq().ok_or_else(|| serde::Error::expected(\"sequence\"))?;\nOk({name}::{v}({elems}))\n}}\n"
                            ));
                        }
                        VariantFields::Named(fs) => {
                            let mut gets = String::new();
                            for f in fs {
                                gets.push_str(&format!(
                                    "{f}: serde::Deserialize::from_content(serde::map_field(fm, \"{f}\")?)?,\n"
                                ));
                            }
                            data_arms.push_str(&format!(
                                "\"{tag}\" => {{\nlet fm = v.as_map().ok_or_else(|| serde::Error::expected(\"map\"))?;\nOk({name}::{v} {{\n{gets}}})\n}}\n"
                            ));
                        }
                    }
                }
                format!(
                    "match c {{\n\
                     serde::Content::Str(s) => match s.as_str() {{\n{unit_arms}\
                     other => Err(serde::Error::unknown_variant(\"{name}\", other)),\n}},\n\
                     serde::Content::Map(m) if m.len() == 1 => {{\n\
                     let (k, v) = &m[0];\nlet _ = v;\n\
                     match k.as_str() {{\n{data_arms}\
                     other => Err(serde::Error::unknown_variant(\"{name}\", other)),\n}}\n}},\n\
                     _ => Err(serde::Error::expected(\"string or single-key map for enum {name}\")),\n}}"
                )
            }
        };
        format!(
            "impl serde::Deserialize for {name} {{\n fn from_content(c: &serde::Content) -> Result<Self, serde::Error> {{\n{body}\n}}\n}}\n"
        )
    }
}
