//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: range and
//! tuple strategies, `prop_map`, `Just`, `any::<bool>()`,
//! `collection::vec`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros. Cases are generated
//! deterministically (seeded from the test name), so failures are
//! reproducible; there is no shrinking — a failing case panics with the
//! generated values visible via the assertion message.

// Shim crate: keep clippy quiet rather than polishing stand-in code.
#![allow(clippy::all)]

use std::marker::PhantomData;
use std::ops::Range;

/// Number of cases each `proptest!` test runs.
pub const CASES: u32 = 64;

// ---------------------------------------------------------------------
// Deterministic RNG (xoshiro256++, seeded from the test name)
// ---------------------------------------------------------------------

pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------

/// A generator of values. Object safe so `prop_oneof!` can box arms.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Uniform choice among boxed alternative strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn empty() -> Self {
        Union { arms: Vec::new() }
    }

    pub fn push(&mut self, arm: Box<dyn Strategy<Value = V>>) {
        self.arms.push(arm);
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------
// `any` / `Arbitrary`
// ---------------------------------------------------------------------

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy,
    };
}

#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::CASES {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let mut __union = $crate::Union::empty();
        $( __union.push(::std::boxed::Box::new($arm)); )+
        __union
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges respect their bounds and tuples compose.
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, -5i32..5), v in collection::vec(0.0f64..1.0, 1..8)) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        /// prop_oneof picks only from its arms.
        #[test]
        fn oneof_picks_arms(x in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
